//! Connection-churn server workloads for the fleet simulation.
//!
//! The fleet preset (see `safemem-fleet` and the `fleet` campaign preset)
//! models the paper's production-run story at GWP-ASan scale: hundreds of
//! processes, each a connection-churning server whose per-allocation
//! sampling makes individual detection unlikely but fleet-level detection
//! near-certain. These workloads are the per-process programs of that
//! story: a steady stream of short-lived connection buffers with bounded
//! lifetimes, plus exactly one planted bug per buggy run.
//!
//! | name         | planted bug                                | class |
//! |--------------|--------------------------------------------|-------|
//! | `churn-leak` | one connection dropped without `free`      | SLeak |
//! | `churn-uaf`  | read of a freed victim buffer              | UAF   |
//! | `churn-obo`  | one-byte write at `victim[len]`            | overflow |
//!
//! Unlike the Table 1 and CVE families, the request loop is exposed as a
//! steppable [`ChurnSim`] so the fleet scheduler can interleave *turns* of
//! many processes over one shared machine while `Workload::run` remains the
//! single-process reference (and the trace-recording path). The step
//! function is a pure function of `(kind, request, buggy)` — it never draws
//! from `Ctx::rand` — so a fleet turn sequence and a solo run issue
//! byte-identical op streams.

use crate::driver::{group_of, AppSpec, BugClass, Ctx, InputMode, RunConfig, Workload};
use safemem_core::{GroupKey, MemTool};
use safemem_os::Os;

const LEAK_APP_ID: u64 = 13;
const UAF_APP_ID: u64 = 14;
const OBO_APP_ID: u64 = 15;

/// Allocation site of the connection buffers.
const SITE_CONN: u64 = 1;
/// Allocation site of the corruption victim buffer (uaf/obo kinds).
const SITE_VICTIM: u64 = 2;
/// Connection buffer size.
const CONN_SIZE: u64 = 128;
/// Victim buffer size.
const VICTIM_SIZE: u64 = 128;
/// The request on which `churn-leak` drops its connection (early, so the
/// leak's idle time crosses the SLeak report threshold well before the run
/// ends).
const LEAK_PLANT_REQUEST: u64 = 8;

/// Which churn workload a [`ChurnSim`] is simulating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnKind {
    /// One connection leaks (dropped without free).
    Leak,
    /// A freed victim buffer is read.
    UseAfterFree,
    /// A one-byte overflow past a victim buffer.
    Overflow,
}

impl ChurnKind {
    fn app_id(self) -> u64 {
        match self {
            ChurnKind::Leak => LEAK_APP_ID,
            ChurnKind::UseAfterFree => UAF_APP_ID,
            ChurnKind::Overflow => OBO_APP_ID,
        }
    }
}

/// The steppable connection-churn state machine: open connections with
/// bounded lifetimes (3–6 requests) plus the planted-bug schedule.
///
/// One request ≈ 0.65 M simulated cycles, so the default 96-request run
/// gives the SLeak detector its stability window, suspicion point, and the
/// full `report_after` idle period with room to spare.
#[derive(Debug)]
pub struct ChurnSim {
    kind: ChurnKind,
    requests: u64,
    /// Open connections: (payload address, request after which it closes).
    conns: Vec<(u64, u64)>,
}

impl ChurnSim {
    /// A fresh simulation of `kind` scheduled for `requests` requests.
    #[must_use]
    pub fn new(kind: ChurnKind, requests: u64) -> Self {
        ChurnSim {
            kind,
            requests,
            conns: Vec::new(),
        }
    }

    /// The app id the simulation's `Ctx` must be created with.
    #[must_use]
    pub fn app_id(&self) -> u64 {
        self.kind.app_id()
    }

    /// Serves one request: accept a connection, do protocol work, retire
    /// expired connections, and (in buggy mode, at this kind's scheduled
    /// request) trigger the planted bug. Deterministic in
    /// `(kind, requests, request, buggy)` — no RNG draws.
    pub fn step(&mut self, ctx: &mut Ctx<'_>, request: u64, buggy: bool) {
        ctx.io(20_000);
        let conn = ctx.alloc(SITE_CONN, CONN_SIZE);
        ctx.fill(conn, CONN_SIZE as usize, 0xB0);
        let close_after = request + 3 + (request % 4);
        if buggy && self.kind == ChurnKind::Leak && request == LEAK_PLANT_REQUEST {
            // The handler loses its last pointer to this connection: it
            // stays allocated forever while its group's other members keep
            // their 3–6 request lifetimes — the SLeak shape.
            ctx.work(2_000, 200);
        } else {
            self.conns.push((conn, close_after));
        }
        ctx.work(300_000, 80);
        ctx.touch(conn, 32);

        if buggy && request == self.requests / 2 {
            match self.kind {
                ChurnKind::UseAfterFree => {
                    let victim = ctx.alloc(SITE_VICTIM, VICTIM_SIZE);
                    ctx.fill(victim, VICTIM_SIZE as usize, 0xC3);
                    ctx.free(victim);
                    // A stale completion callback reads the freed buffer.
                    ctx.touch(victim + 16, 8);
                }
                ChurnKind::Overflow => {
                    let victim = ctx.alloc(SITE_VICTIM, VICTIM_SIZE);
                    // Unchecked copy length: the NUL terminator lands at
                    // victim[len], one byte past the buffer. The overrun is
                    // one fill starting *inside* the buffer (tar's idiom)
                    // so a recorded trace keeps it attributed to `victim` —
                    // a write starting past the end has no stable identity
                    // under replay.
                    ctx.fill(victim, VICTIM_SIZE as usize + 1, 0x5A);
                    ctx.touch(victim, 16);
                    ctx.free(victim);
                }
                ChurnKind::Leak => {}
            }
        }

        // Retire connections whose lifetime expired this request.
        let mut expired = Vec::new();
        self.conns.retain(|&(addr, close_after)| {
            if close_after <= request {
                expired.push(addr);
                false
            } else {
                true
            }
        });
        for addr in expired {
            ctx.touch(addr, 16);
            ctx.free(addr);
        }
        ctx.work(300_000, 80);
        ctx.io(15_000);
    }

    /// Server shutdown: close every still-open connection (the leaked one is
    /// no longer reachable and stays allocated).
    pub fn drain(&mut self, ctx: &mut Ctx<'_>) {
        for (addr, _) in std::mem::take(&mut self.conns) {
            ctx.free(addr);
        }
    }
}

fn run_churn(
    kind: ChurnKind,
    default_requests: u64,
    os: &mut Os,
    tool: &mut dyn MemTool,
    cfg: &RunConfig,
) {
    let requests = cfg.requests.unwrap_or(default_requests);
    let mut sim = ChurnSim::new(kind, requests);
    let mut ctx = Ctx::new(os, tool, sim.app_id(), cfg.seed);
    let buggy = cfg.input == InputMode::Buggy;
    for request in 0..requests {
        sim.step(&mut ctx, request, buggy);
    }
    sim.drain(&mut ctx);
}

/// Request count for a representative churn run: long enough for the SLeak
/// heuristic to suspect, watch, and report the planted leak.
pub const CHURN_DEFAULT_REQUESTS: u64 = 96;

/// Request count for a long-horizon churn run: the slow-leak deployments
/// the paper targets, where the planted bug is a needle in tens of
/// thousands of requests and epoch-batched leak checks keep the check cost
/// amortized. Connections live at most a handful of requests, so the
/// resident set — and the wall cost per request — stays flat no matter how
/// far the horizon stretches.
pub const CHURN_LONG_HORIZON_REQUESTS: u64 = 10_000;

/// `churn-leak`: a connection server that drops one connection buffer.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChurnLeak;

impl Workload for ChurnLeak {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "churn-leak",
            loc: 1100,
            description: "fleet churn server: one dropped connection (SLeak)",
            bug: BugClass::SLeak,
        }
    }

    fn default_requests(&self) -> u64 {
        CHURN_DEFAULT_REQUESTS
    }

    fn true_leak_groups(&self) -> Vec<GroupKey> {
        vec![group_of(LEAK_APP_ID, SITE_CONN, CONN_SIZE)]
    }

    fn run(&self, os: &mut Os, tool: &mut dyn MemTool, cfg: &RunConfig) {
        run_churn(ChurnKind::Leak, self.default_requests(), os, tool, cfg);
    }
}

/// `churn-uaf`: a connection server whose completion path reads a freed
/// victim buffer once.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChurnUaf;

impl Workload for ChurnUaf {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "churn-uaf",
            loc: 1100,
            description: "fleet churn server: stale read of a freed buffer",
            bug: BugClass::UseAfterFree,
        }
    }

    fn default_requests(&self) -> u64 {
        CHURN_DEFAULT_REQUESTS
    }

    fn true_leak_groups(&self) -> Vec<GroupKey> {
        Vec::new()
    }

    fn records_freed_accesses(&self) -> bool {
        true
    }

    fn run(&self, os: &mut Os, tool: &mut dyn MemTool, cfg: &RunConfig) {
        run_churn(
            ChurnKind::UseAfterFree,
            self.default_requests(),
            os,
            tool,
            cfg,
        );
    }
}

/// `churn-obo`: a connection server that writes one byte past a victim
/// buffer once.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChurnObo;

impl Workload for ChurnObo {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "churn-obo",
            loc: 1100,
            description: "fleet churn server: one-byte overflow past a buffer",
            bug: BugClass::Overflow,
        }
    }

    fn default_requests(&self) -> u64 {
        CHURN_DEFAULT_REQUESTS
    }

    fn true_leak_groups(&self) -> Vec<GroupKey> {
        Vec::new()
    }

    fn run(&self, os: &mut Os, tool: &mut dyn MemTool, cfg: &RunConfig) {
        run_churn(ChurnKind::Overflow, self.default_requests(), os, tool, cfg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_under;
    use safemem_core::{SafeMem, SamplingPlan};

    fn buggy(requests: u64) -> RunConfig {
        RunConfig {
            input: InputMode::Buggy,
            requests: Some(requests),
            ..RunConfig::default()
        }
    }

    #[test]
    fn churn_leak_is_detected_at_default_scale() {
        let mut os = Os::with_defaults(1 << 24);
        let mut tool = SafeMem::builder().build(&mut os);
        let result = run_under(
            &ChurnLeak,
            &mut os,
            &mut tool,
            &buggy(CHURN_DEFAULT_REQUESTS),
        );
        assert_eq!(
            result.true_leaks(&ChurnLeak.true_leak_groups()),
            1,
            "planted leak reported: {:?}",
            result.reports
        );
        assert_eq!(result.false_leaks(&ChurnLeak.true_leak_groups()), 0);
        assert!(!result.corruption_detected());
    }

    #[test]
    fn churn_uaf_and_obo_are_detected() {
        for w in [&ChurnUaf as &dyn Workload, &ChurnObo] {
            let mut os = Os::with_defaults(1 << 24);
            let mut tool = SafeMem::builder().leak_detection(false).build(&mut os);
            let result = run_under(w, &mut os, &mut tool, &buggy(48));
            assert!(
                result.corruption_detected(),
                "{}: {:?}",
                w.spec().name,
                result.reports
            );
        }
    }

    #[test]
    fn normal_inputs_are_silent() {
        for w in [&ChurnLeak as &dyn Workload, &ChurnUaf, &ChurnObo] {
            let mut os = Os::with_defaults(1 << 24);
            let mut tool = SafeMem::builder().build(&mut os);
            let cfg = RunConfig {
                requests: Some(CHURN_DEFAULT_REQUESTS),
                ..RunConfig::default()
            };
            let result = run_under(w, &mut os, &mut tool, &cfg);
            assert!(
                result.reports.is_empty(),
                "{}: {:?}",
                w.spec().name,
                result.reports
            );
        }
    }

    #[test]
    fn step_sequence_matches_workload_run() {
        // The steppable path the fleet scheduler drives must replay the
        // exact program `Workload::run` defines.
        let solo = {
            let mut os = Os::with_defaults(1 << 24);
            let mut tool = SafeMem::builder().build(&mut os);
            run_under(&ChurnUaf, &mut os, &mut tool, &buggy(48))
        };
        let stepped = {
            let mut os = Os::with_defaults(1 << 24);
            let mut tool = SafeMem::builder().build(&mut os);
            let mut sim = ChurnSim::new(ChurnKind::UseAfterFree, 48);
            for request in 0..48 {
                let mut ctx = Ctx::new(&mut os, &mut tool, sim.app_id(), RunConfig::default().seed);
                sim.step(&mut ctx, request, true);
            }
            let mut ctx = Ctx::new(&mut os, &mut tool, sim.app_id(), RunConfig::default().seed);
            sim.drain(&mut ctx);
            tool.finish(&mut os);
            crate::driver::RunResult {
                cpu_cycles: os.cpu_cycles(),
                reports: tool.reports(),
                heap_stats: tool.heap().stats(),
            }
        };
        assert_eq!(solo, stepped);
    }

    #[test]
    fn long_horizon_churn_detects_and_stays_silent() {
        // 10k requests: the planted leak is still reported (the SLeak
        // heuristic's thresholds are lifetime-based, not horizon-based) and
        // nothing else is — a bounded resident set over a long horizon must
        // not accrete false suspects.
        let mut os = Os::with_defaults(1 << 24);
        let mut tool = SafeMem::builder().build(&mut os);
        let result = run_under(
            &ChurnLeak,
            &mut os,
            &mut tool,
            &buggy(CHURN_LONG_HORIZON_REQUESTS),
        );
        assert_eq!(result.true_leaks(&ChurnLeak.true_leak_groups()), 1);
        assert_eq!(result.false_leaks(&ChurnLeak.true_leak_groups()), 0);
        assert!(!result.corruption_detected());
    }

    #[test]
    fn detection_follows_the_sampling_decision() {
        // Sub-1.0 sampling: the uaf fires iff the victim allocation drew
        // instrumentation — scan seeds for one of each outcome and check
        // detection matches exactly.
        let mut caught = 0usize;
        let mut missed = 0usize;
        for seed in 0..12u64 {
            let mut os = Os::with_defaults(1 << 24);
            let mut tool = SafeMem::builder()
                .leak_detection(false)
                .sampling(SamplingPlan::new(200_000, seed))
                .build(&mut os);
            let result = run_under(&ChurnUaf, &mut os, &mut tool, &buggy(48));
            if result.corruption_detected() {
                caught += 1;
            } else {
                missed += 1;
            }
        }
        assert!(caught > 0, "some seed samples the victim");
        assert!(missed > 0, "some seed skips the victim");
    }
}
