//! `squid1`: a web proxy cache with a **cache-entry leak** (Table 1).
//!
//! The proxy keeps a table of cached objects with TTL-based expiry. On the
//! forced-reload path (~3 % of buggy-input hits) the handler replaces the
//! table entry without releasing the old object — a sometimes-leak whose
//! victims outlive the group's stable maximal lifetime (≈ the TTL).
//!
//! Thirteen groups generate the pre-pruning false positives of Table 5:
//! twelve periodically-touched module state objects, plus one genuinely
//! idle session object that is never accessed again — the single false
//! positive that survives ECC pruning in the paper's squid1 row.

use crate::driver::{group_of, AppSpec, BugClass, Ctx, FpPool, InputMode, RunConfig, Workload};
use safemem_core::{GroupKey, MemTool};
use safemem_os::Os;

const APP_ID: u64 = 3;
const SITE_OBJECT: u64 = 2;
const SITE_FP_BASE: u64 = 0x90;
const SITE_IDLE: u64 = 0x60;
const OBJECT_SIZE: u64 = 4096;
const IDLE_SIZE: u64 = 2048;
const FP_COUNT: usize = 12;
const FP_SIZE: u64 = 384;
const SLOTS: usize = 128;
const TTL_REQUESTS: u64 = 90;
const SWEEP_PER_REQUEST: usize = 8;

/// The squid-with-leak model.
#[derive(Debug, Clone, Copy, Default)]
pub struct Squid1;

impl Workload for Squid1 {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "squid1",
            loc: 95_000,
            description: "a Web proxy cache server",
            bug: BugClass::SLeak,
        }
    }

    fn default_requests(&self) -> u64 {
        1200
    }

    fn true_leak_groups(&self) -> Vec<GroupKey> {
        vec![group_of(APP_ID, SITE_OBJECT, OBJECT_SIZE)]
    }

    fn run(&self, os: &mut Os, tool: &mut dyn MemTool, cfg: &RunConfig) {
        let mut ctx = Ctx::new(os, tool, APP_ID, cfg.seed);
        let requests = cfg.requests.unwrap_or_else(|| self.default_requests());
        let fp = FpPool::init(&mut ctx, SITE_FP_BASE, FP_COUNT, FP_SIZE, 15, 0);

        // The genuinely idle object: its site also serves short-lived
        // parser scratch (churned below), so its group has a small stable
        // maximal lifetime — but the object itself is never touched again.
        let idle = ctx.alloc(SITE_IDLE, IDLE_SIZE);
        ctx.fill(idle, IDLE_SIZE as usize, 0x66);
        ctx.store_root(13, idle);

        // Cache table: slot → (object addr, birth request).
        let mut table: Vec<Option<(u64, u64)>> = vec![None; SLOTS];
        let mut sweep_cursor = 0usize;

        for req in 0..requests {
            ctx.io(30_000);
            ctx.work(500_000, 300);

            // Scratch at the idle object's site keeps that group's maximal
            // lifetime small and stable.
            let scratch = ctx.alloc(SITE_IDLE, IDLE_SIZE);
            ctx.fill(scratch, 256, 0x01);
            ctx.work(30_000, 300);
            ctx.free(scratch);

            // Expiry sweep: bounded object lifetimes ≈ the TTL.
            for _ in 0..SWEEP_PER_REQUEST {
                let slot = sweep_cursor % SLOTS;
                sweep_cursor += 1;
                if let Some((addr, birth)) = table[slot] {
                    if req.saturating_sub(birth) > TTL_REQUESTS {
                        ctx.clear_root(100 + slot as u64);
                        ctx.free(addr);
                        table[slot] = None;
                    }
                }
            }

            // The request proper.
            let slot = ctx.rand(SLOTS as u64) as usize;
            match table[slot] {
                Some((addr, _)) => {
                    // Cache hit.
                    ctx.touch(addr, 1024);
                    // Forced reload replaces the object. The bug: the old
                    // object is dropped from the table without being freed.
                    if ctx.chance(30) {
                        let fresh = ctx.alloc(SITE_OBJECT, OBJECT_SIZE);
                        ctx.fill(fresh, 2048, 0x99);
                        if cfg.input != InputMode::Buggy {
                            ctx.free(addr);
                        }
                        table[slot] = Some((fresh, req));
                        ctx.store_root(100 + slot as u64, fresh);
                    }
                }
                None => {
                    // Miss: fetch from origin and cache.
                    ctx.io(200_000);
                    let fresh = ctx.alloc(SITE_OBJECT, OBJECT_SIZE);
                    ctx.fill(fresh, 2048, 0x88);
                    table[slot] = Some((fresh, req));
                    ctx.store_root(100 + slot as u64, fresh);
                }
            }

            fp.churn(&mut ctx, req);
            fp.touch(&mut ctx, req);
            ctx.work(400_000, 300);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_under;
    use safemem_core::SafeMem;

    #[test]
    fn safemem_detects_the_cache_leak_with_one_surviving_fp() {
        let mut os = Os::with_defaults(1 << 26);
        let mut tool = SafeMem::builder().build(&mut os);
        let cfg = RunConfig {
            input: InputMode::Buggy,
            requests: None,
            ..RunConfig::default()
        };
        let result = run_under(&Squid1, &mut os, &mut tool, &cfg);
        let truth = Squid1.true_leak_groups();
        assert!(
            result.true_leaks(&truth) >= 1,
            "cache leak detected: {:?}",
            result.reports
        );
        // The idle session object is the one false positive that survives
        // pruning (paper Table 5, squid1 row).
        assert_eq!(result.false_leaks(&truth), 1, "{:?}", result.reports);
    }
}
