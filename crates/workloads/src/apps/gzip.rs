//! `gzip`: a compression utility with a **heap buffer overflow** (Table 1).
//!
//! Block compression streams input through a window buffer with a
//! compute-heavy inner loop (the highest memory-access density of the seven
//! apps — gzip is the workload Purify slows down by ~45×). A crafted input
//! block makes the copy loop run past the window's end.

use crate::driver::{AppSpec, BugClass, Ctx, InputMode, RunConfig, Workload};
use safemem_core::{GroupKey, MemTool};
use safemem_os::Os;

const APP_ID: u64 = 5;
const SITE_WINDOW: u64 = 1;
const SITE_OUT: u64 = 2;
const WINDOW_SIZE: u64 = 8192;
const OUT_SIZE: u64 = 4096;

/// The gzip model.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gzip;

impl Workload for Gzip {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "gzip",
            loc: 8_900,
            description: "a compression utility",
            bug: BugClass::Overflow,
        }
    }

    fn default_requests(&self) -> u64 {
        60 // input blocks
    }

    fn true_leak_groups(&self) -> Vec<GroupKey> {
        Vec::new()
    }

    fn run(&self, os: &mut Os, tool: &mut dyn MemTool, cfg: &RunConfig) {
        let mut ctx = Ctx::new(os, tool, APP_ID, cfg.seed);
        let blocks = cfg.requests.unwrap_or_else(|| self.default_requests());
        let bad_block = blocks / 2;

        for block in 0..blocks {
            // Read the input block.
            ctx.io(60_000);
            let window = ctx.alloc(SITE_WINDOW, WINDOW_SIZE);
            let out = ctx.alloc(SITE_OUT, OUT_SIZE);

            // The match-finding loop: hash-table walks on nearly every
            // cycle — gzip's signature memory-access density.
            for chunk in 0..8u64 {
                ctx.fill(window, 1024, chunk as u8);
                ctx.work(350_000, 750);
            }

            // The bug: a crafted block's back-reference copy runs past the
            // window's end.
            if cfg.input == InputMode::Buggy && block == bad_block {
                let overrun_start = window + WINDOW_SIZE - 512;
                ctx.fill(overrun_start, 512 + 256, 0xBD); // 256 B past the end
            }

            // Emit the compressed block.
            ctx.fill(out, 2048, 0xC0);
            ctx.work(200_000, 750);
            ctx.touch(out, 2048);
            ctx.io(40_000);

            ctx.free(out);
            ctx.free(window);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_under;
    use safemem_core::{BugReport, OverflowSide, SafeMem};

    #[test]
    fn safemem_detects_the_window_overflow() {
        let mut os = Os::with_defaults(1 << 25);
        let mut tool = SafeMem::builder().build(&mut os);
        let cfg = RunConfig {
            input: InputMode::Buggy,
            requests: Some(10),
            ..RunConfig::default()
        };
        let result = run_under(&Gzip, &mut os, &mut tool, &cfg);
        assert!(
            result.reports.iter().any(|r| matches!(
                r,
                BugReport::Overflow {
                    side: OverflowSide::After,
                    buffer_size: WINDOW_SIZE,
                    ..
                }
            )),
            "{:?}",
            result.reports
        );
    }

    #[test]
    fn normal_compression_is_clean() {
        let mut os = Os::with_defaults(1 << 25);
        let mut tool = SafeMem::builder().build(&mut os);
        let cfg = RunConfig {
            requests: Some(10),
            ..RunConfig::default()
        };
        let result = run_under(&Gzip, &mut os, &mut tool, &cfg);
        assert!(result.reports.is_empty(), "{:?}", result.reports);
        assert_eq!(result.heap_stats.live_payload, 0, "all buffers freed");
    }
}
