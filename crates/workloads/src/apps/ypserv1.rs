//! `ypserv1`: a NIS server with an **always-leak** (Table 1).
//!
//! Every request allocates a map-entry record that is stored into an
//! in-memory map and — on every execution path — never freed: the classic
//! ALeak. The group's live count grows one object per request while the
//! group keeps allocating, which is exactly the paper's ALeak signature
//! (§3.2.2). Seven long-lived pool objects at churned sites generate the
//! 7 pre-pruning false positives of Table 5.

use crate::driver::{group_of, AppSpec, BugClass, Ctx, FpPool, InputMode, RunConfig, Workload};
use safemem_core::{GroupKey, MemTool};
use safemem_os::Os;

const APP_ID: u64 = 1;
const SITE_REQ_BUF: u64 = 1;
const SITE_MAP_ENTRY: u64 = 0x20;
const SITE_FP_BASE: u64 = 0x30;
const MAP_ENTRY_SIZE: u64 = 96;
const FP_COUNT: usize = 7;
const FP_SIZE: u64 = 128;

/// The ypserv-with-ALeak model.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ypserv1;

impl Workload for Ypserv1 {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "ypserv1",
            loc: 11_200,
            description: "a NIS server",
            bug: BugClass::ALeak,
        }
    }

    fn default_requests(&self) -> u64 {
        800
    }

    fn true_leak_groups(&self) -> Vec<GroupKey> {
        vec![group_of(APP_ID, SITE_MAP_ENTRY, MAP_ENTRY_SIZE)]
    }

    fn run(&self, os: &mut Os, tool: &mut dyn MemTool, cfg: &RunConfig) {
        let mut ctx = Ctx::new(os, tool, APP_ID, cfg.seed);
        let requests = cfg.requests.unwrap_or_else(|| self.default_requests());
        let fp = FpPool::init(&mut ctx, SITE_FP_BASE, FP_COUNT, FP_SIZE, 20, 0);
        let mut map_entries: Vec<u64> = Vec::new();

        for req in 0..requests {
            // Receive the NIS lookup (network I/O, not CPU time).
            ctx.io(20_000);
            // Parse + hash the key.
            ctx.work(300_000, 65);

            // Scratch buffer for the reply.
            let reply = ctx.alloc(SITE_REQ_BUF, 256);
            ctx.fill(reply, 256, 0x11);

            // The buggy path: a map entry is (re)built for the lookup and
            // inserted, but no path ever frees the previous one.
            let entry = ctx.alloc(SITE_MAP_ENTRY, MAP_ENTRY_SIZE);
            ctx.fill(entry, MAP_ENTRY_SIZE as usize, 0x22);
            if cfg.input == InputMode::Buggy {
                map_entries.push(entry); // kept forever, never touched again
            } else {
                // Normal inputs exercise the cached-lookup path where the
                // entry is consumed and released within the request.
                ctx.touch(entry, MAP_ENTRY_SIZE as usize);
                ctx.free(entry);
            }

            fp.churn(&mut ctx, req);
            fp.touch(&mut ctx, req);

            // Encode + send the reply.
            ctx.work(300_000, 65);
            ctx.touch(reply, 64);
            ctx.free(reply);
            ctx.io(15_000);
        }
        // Server keeps running; drop nothing at "exit" — a snapshot run.
        let _ = map_entries;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_under;
    use safemem_core::{NullTool, SafeMem};

    #[test]
    fn baseline_run_is_clean() {
        let mut os = Os::with_defaults(1 << 24);
        let mut tool = NullTool::new();
        let cfg = RunConfig {
            requests: Some(100),
            ..RunConfig::default()
        };
        let result = run_under(&Ypserv1, &mut os, &mut tool, &cfg);
        assert!(result.reports.is_empty());
        assert!(result.cpu_cycles > 0);
    }

    #[test]
    fn safemem_detects_the_aleak_with_no_false_positives() {
        let mut os = Os::with_defaults(1 << 25);
        let mut tool = SafeMem::builder().build(&mut os);
        let cfg = RunConfig {
            input: InputMode::Buggy,
            requests: Some(400),
            ..RunConfig::default()
        };
        let result = run_under(&Ypserv1, &mut os, &mut tool, &cfg);
        let truth = Ypserv1.true_leak_groups();
        assert!(
            result.true_leaks(&truth) >= 1,
            "ALeak detected: {:?}",
            result.reports
        );
        assert_eq!(
            result.false_leaks(&truth),
            0,
            "no FPs after pruning: {:?}",
            result.reports
        );
    }

    #[test]
    fn normal_input_produces_no_leak_reports() {
        let mut os = Os::with_defaults(1 << 25);
        let mut tool = SafeMem::builder().build(&mut os);
        let cfg = RunConfig {
            requests: Some(400),
            ..RunConfig::default()
        };
        let result = run_under(&Ypserv1, &mut os, &mut tool, &cfg);
        assert_eq!(result.leak_groups().len(), 0, "{:?}", result.reports);
    }
}
