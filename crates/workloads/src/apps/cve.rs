//! The synthetic-CVE corruption arena: four deterministic corruption
//! patterns modelled on recurring CVE shapes, each emitting ground-truth
//! incident markers into the recorded trace.
//!
//! Unlike the Table 1 applications (whose single planted bug fires once per
//! run), these workloads fire their corruption on a fixed schedule, so a
//! recovery-enabled tool must detect, heal and *survive* several incidents
//! back to back. The marker ops ([`TraceOp::Marker`]) give the campaign
//! oracle exact ground truth for the survival-with-integrity scorecard:
//! which incidents happened, of which class, in which order.
//!
//! | name        | pattern                              | class          |
//! |-------------|--------------------------------------|----------------|
//! | `cve-uaf`   | read of a freed session buffer       | use after free |
//! | `cve-dfree` | second `free` of a released buffer   | double free    |
//! | `cve-obo`   | one-byte write at `buf[len]`         | overflow       |
//! | `cve-fmt`   | unchecked linear copy past the end   | overflow       |
//!
//! [`TraceOp::Marker`]: crate::TraceOp::Marker

use crate::driver::{AppSpec, BugClass, Ctx, InputMode, RunConfig, Workload};
use safemem_core::{GroupKey, IncidentClass, MemTool};
use safemem_os::Os;

/// Corruption fires on requests where `request % BUG_PERIOD == BUG_PHASE`.
const BUG_PERIOD: u64 = 8;
/// Offset within the period (avoids colliding with warm-up request 0).
const BUG_PHASE: u64 = 5;

/// Whether this request is one of the scheduled corruption points.
fn buggy_request(cfg: &RunConfig, request: u64) -> bool {
    cfg.input == InputMode::Buggy && request % BUG_PERIOD == BUG_PHASE
}

/// Shared benign request body: parse work, a scratch allocation, I/O.
fn benign_request(ctx: &mut Ctx<'_>, scratch_site: u64) {
    ctx.io(40_000);
    let scratch = ctx.alloc(scratch_site, 96);
    ctx.fill(scratch, 96, 0x20);
    ctx.work(150_000, 400);
    ctx.touch(scratch, 32);
    ctx.free(scratch);
}

/// `cve-uaf`: a connection handler that frees its session buffer, then a
/// stale pointer in the completion path reads it — the classic
/// use-after-free read shape (cf. CVE-2014-0160-style stale-buffer reads).
#[derive(Debug, Clone, Copy, Default)]
pub struct CveUaf;

const UAF_APP_ID: u64 = 9;
const UAF_SITE_SESSION: u64 = 1;
const UAF_SITE_SCRATCH: u64 = 2;
const UAF_SESSION_SIZE: u64 = 128;

impl Workload for CveUaf {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "cve-uaf",
            loc: 900,
            description: "synthetic CVE: stale read of a freed session buffer",
            bug: BugClass::UseAfterFree,
        }
    }

    fn default_requests(&self) -> u64 {
        64
    }

    fn true_leak_groups(&self) -> Vec<GroupKey> {
        Vec::new()
    }

    fn records_freed_accesses(&self) -> bool {
        true
    }

    fn run(&self, os: &mut Os, tool: &mut dyn MemTool, cfg: &RunConfig) {
        let mut ctx = Ctx::new(os, tool, UAF_APP_ID, cfg.seed);
        let requests = cfg.requests.unwrap_or_else(|| self.default_requests());
        for request in 0..requests {
            let session = ctx.alloc(UAF_SITE_SESSION, UAF_SESSION_SIZE);
            ctx.fill(session, UAF_SESSION_SIZE as usize, 0xC5);
            benign_request(&mut ctx, UAF_SITE_SCRATCH);
            ctx.free(session);
            if buggy_request(cfg, request) {
                // The stale completion callback still holds `session`.
                ctx.touch(session + 16, 8);
                ctx.mark_incident(IncidentClass::UseAfterFree);
            }
            ctx.work(60_000, 300);
        }
    }
}

/// `cve-dfree`: an error path releases a buffer the success path already
/// freed — the double-free shape (cf. CVE-2015-0240-style cleanup bugs).
#[derive(Debug, Clone, Copy, Default)]
pub struct CveDfree;

const DFREE_APP_ID: u64 = 10;
const DFREE_SITE_MSG: u64 = 1;
const DFREE_SITE_SCRATCH: u64 = 2;
const DFREE_MSG_SIZE: u64 = 192;

impl Workload for CveDfree {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "cve-dfree",
            loc: 700,
            description: "synthetic CVE: error path re-frees a released buffer",
            bug: BugClass::DoubleFree,
        }
    }

    fn default_requests(&self) -> u64 {
        64
    }

    fn true_leak_groups(&self) -> Vec<GroupKey> {
        Vec::new()
    }

    fn records_freed_accesses(&self) -> bool {
        true
    }

    fn run(&self, os: &mut Os, tool: &mut dyn MemTool, cfg: &RunConfig) {
        let mut ctx = Ctx::new(os, tool, DFREE_APP_ID, cfg.seed);
        let requests = cfg.requests.unwrap_or_else(|| self.default_requests());
        for request in 0..requests {
            let msg = ctx.alloc(DFREE_SITE_MSG, DFREE_MSG_SIZE);
            ctx.fill(msg, DFREE_MSG_SIZE as usize, 0xD0);
            benign_request(&mut ctx, DFREE_SITE_SCRATCH);
            ctx.free(msg);
            if buggy_request(cfg, request) {
                // The error path frees `msg` a second time.
                ctx.free(msg);
                ctx.mark_incident(IncidentClass::DoubleFree);
            }
            ctx.work(60_000, 300);
        }
    }
}

/// `cve-obo`: a copy loop bounded by `<=` instead of `<` writes the single
/// byte at `buf[len]` — the off-by-one shape. The record buffer fills its
/// cache line exactly, so the stray byte lands in the watched guard pad.
#[derive(Debug, Clone, Copy, Default)]
pub struct CveObo;

const OBO_APP_ID: u64 = 11;
const OBO_SITE_RECORD: u64 = 1;
const OBO_SITE_SCRATCH: u64 = 2;
/// One full cache line: `record[OBO_RECORD_SIZE]` is the guard pad's first
/// byte.
const OBO_RECORD_SIZE: u64 = 128;

impl Workload for CveObo {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "cve-obo",
            loc: 500,
            description: "synthetic CVE: off-by-one write at buf[len]",
            bug: BugClass::Overflow,
        }
    }

    fn default_requests(&self) -> u64 {
        64
    }

    fn true_leak_groups(&self) -> Vec<GroupKey> {
        Vec::new()
    }

    fn run(&self, os: &mut Os, tool: &mut dyn MemTool, cfg: &RunConfig) {
        let mut ctx = Ctx::new(os, tool, OBO_APP_ID, cfg.seed);
        let requests = cfg.requests.unwrap_or_else(|| self.default_requests());
        for request in 0..requests {
            let record = ctx.alloc(OBO_SITE_RECORD, OBO_RECORD_SIZE);
            ctx.fill(record, OBO_RECORD_SIZE as usize, 0x0B);
            benign_request(&mut ctx, OBO_SITE_SCRATCH);
            if buggy_request(cfg, request) {
                // `for (i = 0; i <= len; i++) dst[i] = …` — the last
                // iteration writes one byte past the end.
                ctx.fill(record + OBO_RECORD_SIZE, 1, 0x00);
                ctx.mark_incident(IncidentClass::Overflow);
            }
            ctx.touch(record, 64);
            ctx.free(record);
            ctx.work(60_000, 300);
        }
    }
}

/// `cve-fmt`: a format-string-style expansion overruns a fixed response
/// buffer with a long linear write (cf. `sprintf(buf, "%s", attacker)` —
/// the shape of the paper's own tar and gzip bugs, but recurring).
#[derive(Debug, Clone, Copy, Default)]
pub struct CveFmt;

const FMT_APP_ID: u64 = 12;
const FMT_SITE_RESPONSE: u64 = 1;
const FMT_SITE_SCRATCH: u64 = 2;
const FMT_RESPONSE_SIZE: u64 = 100;
/// Expanded length of the hostile request: spills well past the 128-byte
/// line rounding into the guard pad.
const FMT_HOSTILE_LEN: usize = 160;

impl Workload for CveFmt {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "cve-fmt",
            loc: 1_100,
            description: "synthetic CVE: format expansion overruns a response buffer",
            bug: BugClass::Overflow,
        }
    }

    fn default_requests(&self) -> u64 {
        64
    }

    fn true_leak_groups(&self) -> Vec<GroupKey> {
        Vec::new()
    }

    fn run(&self, os: &mut Os, tool: &mut dyn MemTool, cfg: &RunConfig) {
        let mut ctx = Ctx::new(os, tool, FMT_APP_ID, cfg.seed);
        let requests = cfg.requests.unwrap_or_else(|| self.default_requests());
        for request in 0..requests {
            let response = ctx.alloc(FMT_SITE_RESPONSE, FMT_RESPONSE_SIZE);
            let len = if buggy_request(cfg, request) {
                FMT_HOSTILE_LEN
            } else {
                (20 + ctx.rand(60)) as usize
            };
            ctx.fill(response, len, 0x25);
            if len > FMT_RESPONSE_SIZE as usize {
                ctx.mark_incident(IncidentClass::Overflow);
            }
            benign_request(&mut ctx, FMT_SITE_SCRATCH);
            ctx.touch(response, len.min(48));
            ctx.free(response);
            ctx.work(60_000, 300);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_under, RunResult};
    use crate::trace::{Recorder, TraceOp};
    use safemem_core::{BugReport, NullTool, SafeMem};

    fn buggy_cfg(requests: u64) -> RunConfig {
        RunConfig {
            input: InputMode::Buggy,
            requests: Some(requests),
            ..RunConfig::default()
        }
    }

    /// Without free-history a double free surfaces as `WildFree`; with
    /// recovery's quarantine it surfaces as `DoubleFree`. Either counts as
    /// catching the planted bug.
    fn caught_corruption(result: &RunResult) -> bool {
        result.corruption_detected()
            || result
                .reports
                .iter()
                .any(|r| matches!(r, BugReport::WildFree { .. }))
    }

    #[test]
    fn safemem_detects_every_pattern() {
        let workloads: [&dyn Workload; 4] = [&CveUaf, &CveDfree, &CveObo, &CveFmt];
        for w in workloads {
            let mut os = Os::with_defaults(1 << 25);
            let mut tool = SafeMem::builder().leak_detection(false).build(&mut os);
            let result = run_under(w, &mut os, &mut tool, &buggy_cfg(16));
            assert!(
                caught_corruption(&result),
                "{}: {:?}",
                w.spec().name,
                result.reports
            );
        }
    }

    #[test]
    fn normal_inputs_never_fault() {
        let workloads: [&dyn Workload; 4] = [&CveUaf, &CveDfree, &CveObo, &CveFmt];
        for w in workloads {
            let mut os = Os::with_defaults(1 << 25);
            let mut tool = SafeMem::builder().build(&mut os);
            let cfg = RunConfig {
                requests: Some(24),
                ..RunConfig::default()
            };
            let result = run_under(w, &mut os, &mut tool, &cfg);
            assert!(
                result.reports.is_empty(),
                "{}: {:?}",
                w.spec().name,
                result.reports
            );
        }
    }

    #[test]
    fn markers_match_the_schedule() {
        // 16 requests → requests 5 and 13 are corruption points.
        let workloads: [&dyn Workload; 4] = [&CveUaf, &CveDfree, &CveObo, &CveFmt];
        for w in workloads {
            let mut os = Os::with_defaults(1 << 25);
            let mut base = NullTool::new();
            let mut recorder = if w.records_freed_accesses() {
                Recorder::with_freed_tracking(&mut base)
            } else {
                Recorder::new(&mut base)
            };
            w.run(&mut os, &mut recorder, &buggy_cfg(16));
            let trace = recorder.into_trace();
            let markers = trace
                .ops()
                .iter()
                .filter(|op| matches!(op, TraceOp::Marker { .. }))
                .count();
            assert_eq!(markers, 2, "{}", w.spec().name);
        }
    }

    #[test]
    fn freed_patterns_survive_the_trace_roundtrip() {
        // Record under the oblivious baseline, replay under SafeMem: the
        // freed-access bugs must still be there (the whole point of the
        // freed-tracking recorder).
        for w in [&CveUaf as &dyn Workload, &CveDfree] {
            let mut os = Os::with_defaults(1 << 25);
            let mut base = NullTool::new();
            let mut recorder = Recorder::with_freed_tracking(&mut base);
            w.run(&mut os, &mut recorder, &buggy_cfg(16));
            let trace = recorder.into_trace();

            let mut os = Os::with_defaults(1 << 25);
            let mut tool = SafeMem::builder().leak_detection(false).build(&mut os);
            let result = trace.replay(&mut os, &mut tool);
            assert!(
                caught_corruption(&result),
                "{}: {:?}",
                w.spec().name,
                result.reports
            );
        }
    }

    #[test]
    fn recovery_heals_and_survives_each_pattern() {
        let workloads: [&dyn Workload; 4] = [&CveUaf, &CveDfree, &CveObo, &CveFmt];
        for w in workloads {
            let mut os = Os::with_defaults(1 << 25);
            let mut tool = SafeMem::builder()
                .leak_detection(false)
                .recovery(true)
                .build(&mut os);
            let result = run_under(w, &mut os, &mut tool, &buggy_cfg(16));
            assert!(result.corruption_detected(), "{}", w.spec().name);
            let survival = tool.survival().expect("recovery on");
            assert_eq!(survival.canary_violations, 0, "{}", w.spec().name);
            assert!(survival.heap_intact, "{}", w.spec().name);
            assert!(
                survival.healed_overflows + survival.healed_uafs + survival.healed_double_frees
                    >= 2,
                "{}: {survival:?}",
                w.spec().name
            );
        }
    }
}
