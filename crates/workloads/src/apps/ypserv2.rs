//! `ypserv2`: a NIS server version with a **sometimes-leak** (Table 1).
//!
//! Most requests free their lookup record, so the record group develops a
//! small, stable maximal lifetime; a rare error path (taken on ~3 % of
//! buggy-input requests) returns early without the free. The leaked records
//! outlive the stable maximum by orders of magnitude — the SLeak signature
//! of §3.2.2. Two pool objects generate the 2 pre-pruning false positives
//! of Table 5.

use crate::driver::{group_of, AppSpec, BugClass, Ctx, FpPool, InputMode, RunConfig, Workload};
use safemem_core::{GroupKey, MemTool};
use safemem_os::Os;

const APP_ID: u64 = 4;
const SITE_RECORD: u64 = 0x40;
const SITE_REPLY: u64 = 2;
const SITE_FP_BASE: u64 = 0x50;
const RECORD_SIZE: u64 = 64;
const FP_COUNT: usize = 2;
const FP_SIZE: u64 = 192;

/// The ypserv-with-SLeak model.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ypserv2;

impl Workload for Ypserv2 {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "ypserv2",
            loc: 9_700,
            description: "a NIS server",
            bug: BugClass::SLeak,
        }
    }

    fn default_requests(&self) -> u64 {
        900
    }

    fn true_leak_groups(&self) -> Vec<GroupKey> {
        vec![group_of(APP_ID, SITE_RECORD, RECORD_SIZE)]
    }

    fn run(&self, os: &mut Os, tool: &mut dyn MemTool, cfg: &RunConfig) {
        let mut ctx = Ctx::new(os, tool, APP_ID, cfg.seed);
        let requests = cfg.requests.unwrap_or_else(|| self.default_requests());
        let fp = FpPool::init(&mut ctx, SITE_FP_BASE, FP_COUNT, FP_SIZE, 25, 0);

        for req in 0..requests {
            ctx.io(25_000);
            ctx.work(350_000, 70);

            let record = ctx.alloc(SITE_RECORD, RECORD_SIZE);
            ctx.fill(record, RECORD_SIZE as usize, 0x33);

            let reply = ctx.alloc(SITE_REPLY, 320);
            ctx.fill(reply, 320, 0x44);
            ctx.work(250_000, 70);
            ctx.touch(reply, 128);
            ctx.free(reply);

            // The bug: a malformed-map error path returns early and skips
            // freeing the record.
            let error_path = cfg.input == InputMode::Buggy && ctx.chance(30);
            if !error_path {
                ctx.touch(record, RECORD_SIZE as usize);
                ctx.free(record);
            }

            fp.churn(&mut ctx, req);
            fp.touch(&mut ctx, req);
            ctx.io(15_000);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_under;
    use safemem_core::{NullTool, SafeMem};

    #[test]
    fn safemem_detects_the_sleak() {
        let mut os = Os::with_defaults(1 << 25);
        let mut tool = SafeMem::builder().build(&mut os);
        let cfg = RunConfig {
            input: InputMode::Buggy,
            requests: Some(500),
            ..RunConfig::default()
        };
        let result = run_under(&Ypserv2, &mut os, &mut tool, &cfg);
        let truth = Ypserv2.true_leak_groups();
        assert!(
            result.true_leaks(&truth) >= 1,
            "SLeak detected: {:?}",
            result.reports
        );
        assert_eq!(result.false_leaks(&truth), 0, "{:?}", result.reports);
    }

    #[test]
    fn identical_seeds_give_identical_op_sequences() {
        // The overhead methodology requires run determinism.
        let run = |seed| {
            let mut os = Os::with_defaults(1 << 24);
            let mut tool = NullTool::new();
            // Buggy input exercises the seeded random error path.
            let cfg = RunConfig {
                input: InputMode::Buggy,
                requests: Some(60),
                seed,
            };
            run_under(&Ypserv2, &mut os, &mut tool, &cfg).cpu_cycles
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds take different paths");
    }
}
