//! `httpd`: an extension workload beyond the paper's Table 1.
//!
//! The paper's future work says "we have evaluated SafeMem with a limited
//! number (only seven) of applications" — this model adds an eighth in the
//! same style: an HTTP server containing **both** bug classes at once (a
//! session-state leak *and* a header-parsing overflow), exercising combined
//! ML+MC detection in a single run.

use crate::driver::{group_of, AppSpec, BugClass, Ctx, FpPool, InputMode, RunConfig, Workload};
use safemem_core::{GroupKey, MemTool};
use safemem_os::Os;

const APP_ID: u64 = 8;
const SITE_HEADER: u64 = 1;
const SITE_BODY: u64 = 2;
const SITE_SESSION: u64 = 0x30;
const SITE_FP: u64 = 0x40;
const HEADER_SIZE: u64 = 256;
const SESSION_SIZE: u64 = 192;

/// The httpd model (extension; both a leak and an overflow when buggy).
#[derive(Debug, Clone, Copy, Default)]
pub struct Httpd;

impl Workload for Httpd {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "httpd",
            loc: 0,
            description: "an HTTP server (extension workload: leak + overflow)",
            bug: BugClass::SLeak, // primary class; also plants an overflow
        }
    }

    fn default_requests(&self) -> u64 {
        800
    }

    fn true_leak_groups(&self) -> Vec<GroupKey> {
        vec![group_of(APP_ID, SITE_SESSION, SESSION_SIZE)]
    }

    fn run(&self, os: &mut Os, tool: &mut dyn MemTool, cfg: &RunConfig) {
        let mut ctx = Ctx::new(os, tool, APP_ID, cfg.seed);
        let requests = cfg.requests.unwrap_or_else(|| self.default_requests());
        let fp = FpPool::init(&mut ctx, SITE_FP, 3, 160, 18, 0);
        let overflow_at = requests / 3;

        for req in 0..requests {
            ctx.io(25_000);
            ctx.work(300_000, 250);

            // Parse the request line + headers into a fixed buffer.
            let header = ctx.alloc(SITE_HEADER, HEADER_SIZE);
            let header_len = (40 + ctx.rand(180)) as usize;
            ctx.fill(header, header_len, 0x48);
            // Bug #1: a crafted request with an oversized header field is
            // copied without bounds checking.
            if cfg.input == InputMode::Buggy && req == overflow_at {
                ctx.fill(header, HEADER_SIZE as usize + 80, 0x58);
            }

            // Session lookup/creation: ~10 % of requests start a session.
            if ctx.chance(100) {
                let session = ctx.alloc(SITE_SESSION, SESSION_SIZE);
                ctx.fill(session, SESSION_SIZE as usize, 0x53);
                // Bug #2: the keep-alive teardown path forgets the session
                // object (buggy input only; normal inputs close it).
                let leaked = cfg.input == InputMode::Buggy && ctx.chance(400);
                if !leaked {
                    ctx.work(60_000, 250);
                    ctx.touch(session, 64);
                    ctx.free(session);
                }
            }

            // Serve the response body.
            let body = ctx.alloc(SITE_BODY, 2048);
            ctx.fill(body, 1024, 0x42);
            ctx.work(250_000, 250);
            ctx.touch(body, 512);
            ctx.io(40_000);
            ctx.free(body);

            ctx.touch(header, header_len.min(HEADER_SIZE as usize));
            ctx.free(header);

            fp.churn(&mut ctx, req);
            fp.touch(&mut ctx, req);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_under;
    use safemem_core::{BugReport, SafeMem};

    #[test]
    fn both_bug_classes_detected_in_one_run() {
        let mut os = Os::with_defaults(1 << 26);
        let mut tool = SafeMem::builder().build(&mut os);
        let cfg = RunConfig {
            input: InputMode::Buggy,
            requests: Some(600),
            ..RunConfig::default()
        };
        let result = run_under(&Httpd, &mut os, &mut tool, &cfg);
        assert!(
            result.reports.iter().any(|r| matches!(
                r,
                BugReport::Overflow {
                    buffer_size: HEADER_SIZE,
                    ..
                }
            )),
            "overflow found: {:?}",
            result.reports
        );
        assert!(
            result.true_leaks(&Httpd.true_leak_groups()) >= 1,
            "session leak found: {:?}",
            result.reports
        );
        assert_eq!(
            result.false_leaks(&Httpd.true_leak_groups()),
            0,
            "{:?}",
            result.reports
        );
    }

    #[test]
    fn normal_runs_are_clean() {
        let mut os = Os::with_defaults(1 << 26);
        let mut tool = SafeMem::builder().build(&mut os);
        let cfg = RunConfig {
            requests: Some(300),
            ..RunConfig::default()
        };
        let result = run_under(&Httpd, &mut os, &mut tool, &cfg);
        assert!(result.reports.is_empty(), "{:?}", result.reports);
    }
}
