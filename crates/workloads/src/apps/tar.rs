//! `tar`: an archiving utility with a **name-buffer overflow** (Table 1).
//!
//! Archive creation processes one file per iteration: a header record and a
//! fixed 100-byte name buffer (the classic tar name field). One crafted
//! entry carries an oversized name that the copy writes past the buffer.

use crate::driver::{AppSpec, BugClass, Ctx, InputMode, RunConfig, Workload};
use safemem_core::{GroupKey, MemTool};
use safemem_os::Os;

const APP_ID: u64 = 6;
const SITE_HEADER: u64 = 1;
const SITE_NAME: u64 = 2;
const NAME_SIZE: u64 = 100;
const LONG_NAME: usize = 160; // spills past the 128-byte line rounding

/// The tar model.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tar;

impl Workload for Tar {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "tar",
            loc: 34_000,
            description: "an archiving utility",
            bug: BugClass::Overflow,
        }
    }

    fn default_requests(&self) -> u64 {
        250 // files archived
    }

    fn true_leak_groups(&self) -> Vec<GroupKey> {
        Vec::new()
    }

    fn run(&self, os: &mut Os, tool: &mut dyn MemTool, cfg: &RunConfig) {
        let mut ctx = Ctx::new(os, tool, APP_ID, cfg.seed);
        let files = cfg.requests.unwrap_or_else(|| self.default_requests());
        let bad_file = files / 2;

        for file in 0..files {
            // stat() + open the file.
            ctx.io(50_000);
            let header = ctx.alloc(SITE_HEADER, 512);
            let name = ctx.alloc(SITE_NAME, NAME_SIZE);

            // Copy the file name into the fixed-size field. The bug: a
            // crafted long path is copied without length checking.
            let name_len = if cfg.input == InputMode::Buggy && file == bad_file {
                LONG_NAME
            } else {
                (12 + ctx.rand(80)) as usize
            };
            ctx.fill(name, name_len, 0x2F);

            // Checksum + write header and file data blocks.
            ctx.fill(header, 512, 0x00);
            ctx.work(400_000, 500);
            ctx.touch(name, name_len.min(32));
            ctx.touch(header, 512);
            ctx.io(90_000);

            ctx.free(name);
            ctx.free(header);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_under;
    use safemem_core::{BugReport, SafeMem};

    #[test]
    fn safemem_detects_the_name_overflow() {
        let mut os = Os::with_defaults(1 << 25);
        let mut tool = SafeMem::builder().build(&mut os);
        let cfg = RunConfig {
            input: InputMode::Buggy,
            requests: Some(20),
            ..RunConfig::default()
        };
        let result = run_under(&Tar, &mut os, &mut tool, &cfg);
        assert!(
            result.reports.iter().any(|r| matches!(
                r,
                BugReport::Overflow {
                    buffer_size: NAME_SIZE,
                    ..
                }
            )),
            "{:?}",
            result.reports
        );
    }

    #[test]
    fn short_names_never_fault() {
        let mut os = Os::with_defaults(1 << 25);
        let mut tool = SafeMem::builder().build(&mut os);
        let cfg = RunConfig {
            requests: Some(30),
            ..RunConfig::default()
        };
        let result = run_under(&Tar, &mut os, &mut tool, &cfg);
        assert!(result.reports.is_empty(), "{:?}", result.reports);
    }
}
