//! `squid2`: a web proxy version with an **access to freed memory**
//! (Table 1).
//!
//! A refcounting slip on the object-timeout path releases a cached object
//! while a stale reference to it remains in a pending-request list; a later
//! request follows the stale reference into the freed buffer.

use crate::driver::{AppSpec, BugClass, Ctx, InputMode, RunConfig, Workload};
use safemem_core::{GroupKey, MemTool};
use safemem_os::Os;

const APP_ID: u64 = 7;
const SITE_OBJECT: u64 = 2;
const SITE_VICTIM: u64 = 9;
/// Deliberately unusual size: its free-list class stays untouched between
/// the buggy free and the stale access, like the real bug's rare object type.
const VICTIM_SIZE: u64 = 5000;
const SLOTS: usize = 64;

/// The squid-with-use-after-free model.
#[derive(Debug, Clone, Copy, Default)]
pub struct Squid2;

impl Workload for Squid2 {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "squid2",
            loc: 93_000,
            description: "a Web proxy cache server",
            bug: BugClass::UseAfterFree,
        }
    }

    fn default_requests(&self) -> u64 {
        700
    }

    fn true_leak_groups(&self) -> Vec<GroupKey> {
        Vec::new()
    }

    fn run(&self, os: &mut Os, tool: &mut dyn MemTool, cfg: &RunConfig) {
        let mut ctx = Ctx::new(os, tool, APP_ID, cfg.seed);
        let requests = cfg.requests.unwrap_or_else(|| self.default_requests());
        let timeout_at = requests / 3;
        let stale_hit_at = timeout_at + 10;

        // The victim object: cached early, referenced by a pending request.
        let victim = ctx.alloc(SITE_VICTIM, VICTIM_SIZE);
        ctx.fill(victim, VICTIM_SIZE as usize, 0x5A);
        ctx.store_root(0, victim);
        let mut victim_freed = false;

        let mut table: Vec<Option<u64>> = vec![None; SLOTS];
        for req in 0..requests {
            ctx.io(30_000);
            ctx.work(280_000, 300);

            // Ordinary cache churn.
            let slot = ctx.rand(SLOTS as u64) as usize;
            match table[slot] {
                Some(addr) => {
                    ctx.touch(addr, 512);
                    if ctx.chance(200) {
                        ctx.clear_root(100 + slot as u64);
                        ctx.free(addr);
                        table[slot] = None;
                    }
                }
                None => {
                    let fresh = ctx.alloc(SITE_OBJECT, 1536);
                    ctx.fill(fresh, 1024, 0x42);
                    ctx.store_root(100 + slot as u64, fresh);
                    table[slot] = Some(fresh);
                }
            }

            // The bug, part 1: the timeout handler drops the last reference
            // and frees the victim — but the pending-request list still
            // holds a stale pointer.
            if cfg.input == InputMode::Buggy && req == timeout_at {
                ctx.free(victim);
                victim_freed = true;
            }
            // The bug, part 2: the pending request completes and follows
            // the stale pointer.
            if cfg.input == InputMode::Buggy && req == stale_hit_at {
                ctx.touch(victim, 256);
            }

            ctx.work(160_000, 300);
        }

        // Normal shutdown releases the victim properly.
        if !victim_freed {
            ctx.clear_root(0);
            ctx.free(victim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_under;
    use safemem_core::{BugReport, SafeMem};

    #[test]
    fn safemem_detects_the_use_after_free() {
        let mut os = Os::with_defaults(1 << 26);
        let mut tool = SafeMem::builder().build(&mut os);
        let cfg = RunConfig {
            input: InputMode::Buggy,
            requests: Some(120),
            ..RunConfig::default()
        };
        let result = run_under(&Squid2, &mut os, &mut tool, &cfg);
        assert!(
            result.reports.iter().any(|r| matches!(
                r,
                BugReport::UseAfterFree {
                    buffer_size: VICTIM_SIZE,
                    ..
                }
            )),
            "{:?}",
            result.reports
        );
    }

    #[test]
    fn normal_run_is_clean_and_balanced() {
        let mut os = Os::with_defaults(1 << 26);
        let mut tool = SafeMem::builder().build(&mut os);
        let cfg = RunConfig {
            requests: Some(120),
            ..RunConfig::default()
        };
        let result = run_under(&Squid2, &mut os, &mut tool, &cfg);
        assert!(!result.corruption_detected(), "{:?}", result.reports);
    }
}
