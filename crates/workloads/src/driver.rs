//! Workload driver: the harness that runs an application model under a
//! memory tool and collects the measurements the paper's tables need.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use safemem_alloc::HeapStats;
use safemem_core::{BugReport, CallStack, GroupKey, MemTool};
use safemem_os::{Os, STATIC_BASE};
use std::fmt;

/// Whether a run uses normal inputs (bug dormant — overhead measurements)
/// or buggy inputs (bug triggered — detection measurements), per §5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum InputMode {
    /// Bug-free inputs: the program runs correctly to completion.
    #[default]
    Normal,
    /// Bug-triggering inputs.
    Buggy,
}

/// Parameters of one run.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RunConfig {
    /// Input mode.
    pub input: InputMode,
    /// Number of requests/iterations (`None` = the app's default scale).
    pub requests: Option<u64>,
    /// RNG seed — runs with equal seeds perform identical op sequences, so
    /// overhead comparisons across tools are apples-to-apples.
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            input: InputMode::Normal,
            requests: None,
            seed: 0x05AF_E3E3,
        }
    }
}

/// The bug class an application contains (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum BugClass {
    /// An always-leak (never freed on any path).
    ALeak,
    /// A sometimes-leak (freed on most paths).
    SLeak,
    /// A heap buffer overflow.
    Overflow,
    /// An access to freed memory.
    UseAfterFree,
    /// A second `free` of an already-freed block.
    DoubleFree,
}

impl BugClass {
    /// Whether this is one of the memory-leak classes.
    #[must_use]
    pub fn is_leak(self) -> bool {
        matches!(self, BugClass::ALeak | BugClass::SLeak)
    }
}

impl fmt::Display for BugClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BugClass::ALeak => write!(f, "memory leak (ALeak)"),
            BugClass::SLeak => write!(f, "memory leak (SLeak)"),
            BugClass::Overflow => write!(f, "buffer overflow"),
            BugClass::UseAfterFree => write!(f, "access to freed memory"),
            BugClass::DoubleFree => write!(f, "double free"),
        }
    }
}

/// Static description of a tested application (Table 1 row).
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AppSpec {
    /// Application name as used in the paper (e.g. "ypserv1").
    pub name: &'static str,
    /// Lines of code of the real application (Table 1; descriptive only).
    pub loc: u32,
    /// One-line description.
    pub description: &'static str,
    /// The bug the buggy version contains.
    pub bug: BugClass,
}

/// Everything measured in one run.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RunResult {
    /// Process CPU cycles consumed (the overhead metric of Table 3).
    pub cpu_cycles: u64,
    /// All bug reports the tool produced.
    pub reports: Vec<BugReport>,
    /// The tool's allocator statistics (the space metric of Table 4).
    pub heap_stats: HeapStats,
}

impl RunResult {
    /// Leak reports whose group is in `truth` (true positives).
    #[must_use]
    pub fn true_leaks(&self, truth: &[GroupKey]) -> usize {
        self.leak_groups()
            .iter()
            .filter(|g| truth.contains(g))
            .count()
    }

    /// Leak reports whose group is *not* in `truth` (false positives — the
    /// quantity of Table 5).
    #[must_use]
    pub fn false_leaks(&self, truth: &[GroupKey]) -> usize {
        self.leak_groups()
            .iter()
            .filter(|g| !truth.contains(g))
            .count()
    }

    /// Distinct groups reported as leaks.
    #[must_use]
    pub fn leak_groups(&self) -> Vec<GroupKey> {
        let mut groups: Vec<GroupKey> = self
            .reports
            .iter()
            .filter_map(|r| match r {
                BugReport::Leak { group, .. } => Some(*group),
                _ => None,
            })
            .collect();
        groups.sort_unstable();
        groups.dedup();
        groups
    }

    /// Whether any corruption bug was reported.
    #[must_use]
    pub fn corruption_detected(&self) -> bool {
        self.reports.iter().any(BugReport::is_corruption)
    }
}

/// An application model: a deterministic program driving the allocator and
/// the simulated memory system through a [`MemTool`].
pub trait Workload {
    /// The Table 1 row for this application.
    fn spec(&self) -> AppSpec;

    /// Default request count for a representative run.
    fn default_requests(&self) -> u64;

    /// Runs the application under `tool`. Implementations must be
    /// deterministic in (`cfg.input`, `cfg.requests`, `cfg.seed`).
    fn run(&self, os: &mut Os, tool: &mut dyn MemTool, cfg: &RunConfig);

    /// The object groups the injected bug actually leaks (empty for
    /// corruption apps). Used to separate true from false positives.
    fn true_leak_groups(&self) -> Vec<GroupKey>;

    /// Whether buggy runs of this workload access *freed* memory (use after
    /// free, double free). Recording such a workload needs a freed-tracking
    /// [`Recorder`](crate::Recorder) — a plain one re-attributes freed
    /// accesses to the nearest live buffer and the bug evaporates from the
    /// trace. Defaults to `false` so existing workloads record
    /// byte-identical traces.
    fn records_freed_accesses(&self) -> bool {
        false
    }
}

/// Runs a workload to completion under a tool and collects the result.
pub fn run_under(
    workload: &dyn Workload,
    os: &mut Os,
    tool: &mut dyn MemTool,
    cfg: &RunConfig,
) -> RunResult {
    workload.run(os, tool, cfg);
    tool.finish(os);
    RunResult {
        cpu_cycles: os.cpu_cycles(),
        reports: tool.reports(),
        heap_stats: tool.heap().stats(),
    }
}

/// The group key of an allocation of `size` bytes at `site` inside app
/// `app_id` — the standalone twin of [`Ctx::group`], used by workloads to
/// declare their ground-truth leak groups without a live context.
#[must_use]
pub fn group_of(app_id: u64, site: u64, size: u64) -> GroupKey {
    let frame = 0x40_0000 + app_id * 0x1_0000;
    GroupKey::new(size, &CallStack::new(&[frame, frame + 0x100 + site]))
}

/// Per-app execution context: bundles the OS, the tool, a seeded RNG, and
/// the synthetic call-stack machinery.
pub struct Ctx<'a> {
    /// The simulated OS.
    pub os: &'a mut Os,
    /// The tool under test.
    pub tool: &'a mut dyn MemTool,
    /// Deterministic randomness.
    pub rng: StdRng,
    app_frame: u64,
}

impl<'a> Ctx<'a> {
    /// Creates a context for application `app_id` (distinct ids keep call
    /// sites of different apps distinct).
    pub fn new(os: &'a mut Os, tool: &'a mut dyn MemTool, app_id: u64, seed: u64) -> Self {
        Ctx {
            os,
            tool,
            rng: StdRng::seed_from_u64(seed ^ app_id),
            app_frame: 0x40_0000 + app_id * 0x1_0000,
        }
    }

    /// The synthetic call stack for allocation site `site`.
    #[must_use]
    pub fn stack(&self, site: u64) -> CallStack {
        CallStack::new(&[self.app_frame, self.app_frame + 0x100 + site])
    }

    /// The group key an allocation of `size` at `site` belongs to.
    #[must_use]
    pub fn group(&self, site: u64, size: u64) -> GroupKey {
        GroupKey::new(size, &self.stack(site))
    }

    /// `malloc(size)` at `site`.
    pub fn alloc(&mut self, site: u64, size: u64) -> u64 {
        let stack = self.stack(site);
        self.tool.malloc(self.os, size, &stack)
    }

    /// `free(addr)`.
    pub fn free(&mut self, addr: u64) {
        self.tool.free(self.os, addr);
    }

    /// Writes `len` bytes of pattern data at `addr`.
    pub fn fill(&mut self, addr: u64, len: usize, byte: u8) {
        let data = vec![byte; len];
        self.tool.write(self.os, addr, &data);
    }

    /// Reads `len` bytes at `addr` (a "use" of the buffer).
    pub fn touch(&mut self, addr: u64, len: usize) {
        let mut buf = vec![0u8; len];
        self.tool.read(self.os, addr, &mut buf);
    }

    /// Application computation: `cycles` of work with roughly
    /// `density_permille` memory-access instructions per 1000 cycles.
    pub fn work(&mut self, cycles: u64, density_permille: u64) {
        let accesses = cycles * density_permille / 1000;
        self.tool.compute(self.os, cycles, accesses);
    }

    /// Blocking I/O (excluded from CPU time).
    pub fn io(&mut self, ns: u64) {
        self.os.io_wait_ns(ns);
    }

    /// Stores a long-lived pointer into the static root table (slot index),
    /// making the target reachable for conservative leak scanners.
    pub fn store_root(&mut self, slot: u64, ptr: u64) {
        self.tool
            .write(self.os, STATIC_BASE + slot * 8, &ptr.to_le_bytes());
    }

    /// Clears a root slot (the target becomes unreachable).
    pub fn clear_root(&mut self, slot: u64) {
        self.tool
            .write(self.os, STATIC_BASE + slot * 8, &0u64.to_le_bytes());
    }

    /// Uniform integer in `[0, bound)`.
    pub fn rand(&mut self, bound: u64) -> u64 {
        self.rng.gen_range(0..bound)
    }

    /// Bernoulli draw with probability `permille`/1000.
    pub fn chance(&mut self, permille: u64) -> bool {
        self.rng.gen_range(0u64..1000) < permille
    }

    /// Records a ground-truth incident marker: the workload asserts the
    /// access it just performed was a planted corruption of class `kind`.
    /// Flows into the trace (and the campaign oracle) via the tool.
    pub fn mark_incident(&mut self, kind: safemem_core::IncidentClass) {
        self.tool.mark_incident(kind);
    }
}

/// A pool of long-lived objects that generate leak *false positives*: each
/// shares its allocation site (and size) with short-lived churn objects, so
/// its group develops a small, stable maximal lifetime that the pool object
/// vastly exceeds — flagging it as a suspect. Periodic touches then prove
/// it alive, exercising SafeMem's ECC pruning (Table 5).
pub struct FpPool {
    sites: Vec<u64>,
    objs: Vec<u64>,
    size: u64,
    touch_every: u64,
    root_base: u64,
}

impl FpPool {
    /// Allocates `n` pool objects of `size` bytes at sites
    /// `site_base..site_base + n`, rooted at root slots
    /// `root_base..root_base + n`, touched every `touch_every` requests.
    pub fn init(
        ctx: &mut Ctx<'_>,
        site_base: u64,
        n: usize,
        size: u64,
        touch_every: u64,
        root_base: u64,
    ) -> Self {
        let mut sites = Vec::with_capacity(n);
        let mut objs = Vec::with_capacity(n);
        for i in 0..n as u64 {
            let site = site_base + i;
            let addr = ctx.alloc(site, size);
            ctx.fill(addr, size as usize, 0xA0 + i as u8);
            ctx.store_root(root_base + i, addr);
            sites.push(site);
            objs.push(addr);
        }
        FpPool {
            sites,
            objs,
            size,
            touch_every,
            root_base,
        }
    }

    /// Per-request churn: a short-lived allocation from one pool site, so
    /// the group's maximal lifetime stays small and stable.
    pub fn churn(&self, ctx: &mut Ctx<'_>, request: u64) {
        let site = self.sites[(request % self.sites.len() as u64) as usize];
        let tmp = ctx.alloc(site, self.size);
        ctx.fill(tmp, self.size as usize, 0x55);
        ctx.work(20_000, 100);
        ctx.free(tmp);
    }

    /// Periodic touches proving the pool objects live.
    pub fn touch(&self, ctx: &mut Ctx<'_>, request: u64) {
        if request > 0 && request.is_multiple_of(self.touch_every) {
            for &obj in &self.objs {
                ctx.touch(obj, 16);
            }
        }
    }

    /// Tears the pool down (free everything) — used in normal-exit paths.
    pub fn teardown(&self, ctx: &mut Ctx<'_>) {
        for (i, &obj) in self.objs.iter().enumerate() {
            ctx.clear_root(self.root_base + i as u64);
            ctx.free(obj);
        }
    }

    /// The group keys of the pool objects (the *potential* false positives).
    #[must_use]
    pub fn groups(&self, ctx: &Ctx<'_>) -> Vec<GroupKey> {
        self.sites
            .iter()
            .map(|&s| ctx.group(s, self.size))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safemem_core::{NullTool, SafeMem};
    use safemem_os::Os;

    #[test]
    fn group_of_matches_ctx_group() {
        let mut os = Os::with_defaults(1 << 22);
        let mut tool = NullTool::new();
        let ctx = Ctx::new(&mut os, &mut tool, 3, 42);
        assert_eq!(ctx.group(0x20, 96), group_of(3, 0x20, 96));
        assert_ne!(
            group_of(3, 0x20, 96),
            group_of(4, 0x20, 96),
            "apps are distinct"
        );
        assert_ne!(
            group_of(3, 0x20, 96),
            group_of(3, 0x21, 96),
            "sites are distinct"
        );
    }

    #[test]
    fn run_result_classifies_leaks() {
        use safemem_core::{BugReport, GroupKey, LeakKind};
        let g1 = GroupKey {
            size: 8,
            signature: 1,
        };
        let g2 = GroupKey {
            size: 8,
            signature: 2,
        };
        let leak = |group| BugReport::Leak {
            addr: 0,
            size: 8,
            group,
            kind: LeakKind::SLeak,
            at_cpu_cycles: 0,
        };
        let result = RunResult {
            cpu_cycles: 1,
            reports: vec![leak(g1), leak(g1), leak(g2)],
            heap_stats: safemem_alloc::HeapStats::default(),
        };
        assert_eq!(result.leak_groups().len(), 2, "deduplicated by group");
        assert_eq!(result.true_leaks(&[g1]), 1);
        assert_eq!(result.false_leaks(&[g1]), 1);
        assert!(!result.corruption_detected());
    }

    #[test]
    fn fp_pool_objects_survive_and_prune() {
        // A pool object watched as a suspect is pruned by its periodic
        // touch and survives the run unreported.
        let mut os = Os::with_defaults(1 << 24);
        let mut tool = SafeMem::builder()
            .corruption_detection(false)
            .leak_config(safemem_core::LeakConfig {
                check_period: 10_000,
                warmup: 0,
                sleak_stable_threshold: 10_000,
                report_after: 3_000_000,
                ..safemem_core::LeakConfig::default()
            })
            .build(&mut os);
        let mut ctx = Ctx::new(&mut os, &mut tool, 9, 1);
        let pool = FpPool::init(&mut ctx, 0x10, 3, 128, 5, 0);
        for req in 0..200 {
            pool.churn(&mut ctx, req);
            pool.touch(&mut ctx, req);
            ctx.work(50_000, 100);
        }
        let stats = ctx.tool.reports();
        assert!(
            !stats.iter().any(safemem_core::BugReport::is_leak),
            "pool objects must not be reported: {stats:?}"
        );
        pool.teardown(&mut ctx);
    }

    #[test]
    fn ctx_roots_are_reachable_words() {
        let mut os = Os::with_defaults(1 << 22);
        let mut tool = NullTool::new();
        let mut ctx = Ctx::new(&mut os, &mut tool, 9, 1);
        ctx.store_root(4, 0xABCD_1234);
        assert_eq!(
            ctx.os.read_u64(safemem_os::STATIC_BASE + 32).unwrap(),
            0xABCD_1234
        );
        ctx.clear_root(4);
        assert_eq!(ctx.os.read_u64(safemem_os::STATIC_BASE + 32).unwrap(), 0);
    }

    #[test]
    fn chance_and_rand_are_bounded() {
        let mut os = Os::with_defaults(1 << 22);
        let mut tool = NullTool::new();
        let mut ctx = Ctx::new(&mut os, &mut tool, 9, 1);
        for _ in 0..200 {
            assert!(ctx.rand(7) < 7);
        }
        assert!((0..200).all(|_| !ctx.chance(0)), "0 permille never fires");
        assert!(
            (0..200).all(|_| ctx.chance(1000)),
            "1000 permille always fires"
        );
    }
}
