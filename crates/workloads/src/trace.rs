//! Allocation-trace record and replay.
//!
//! The paper's methodology depends on repeatable runs ("we use normal
//! inputs so the memory leak bugs do not occur"). This module makes that a
//! first-class artefact: a [`Trace`] is a serialisable list of the
//! allocator/access operations a workload performed, which can be replayed
//! against *any* tool — useful for regression-testing detector changes
//! against frozen inputs, and for comparing tools on bit-identical op
//! sequences without rerunning the workload logic.
//!
//! A [`Recorder`] wraps any [`MemTool`] and captures the op stream; replay
//! re-issues it through another tool, translating recorded buffer ids to
//! the replay tool's addresses (placements differ across layout policies).

use crate::driver::RunResult;
use safemem_core::{CallStack, IncidentClass, MemTool};
use safemem_os::Os;
use std::collections::HashMap;

/// One recorded operation. Buffers are identified by a dense id assigned at
/// `Malloc` time, because absolute addresses differ across layout policies.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TraceOp {
    /// `malloc(size)` with the given call-stack frames; binds the next id.
    Malloc {
        /// Requested size.
        size: u64,
        /// Call-stack frames (oldest first).
        frames: Vec<u64>,
    },
    /// `free` of buffer `id`.
    Free {
        /// Buffer id from the corresponding `Malloc`.
        id: u32,
    },
    /// Read of `len` bytes at `offset` within buffer `id`.
    Read {
        /// Buffer id.
        id: u32,
        /// Byte offset within the buffer (may exceed the payload for
        /// recorded buggy accesses).
        offset: i64,
        /// Length.
        len: u32,
    },
    /// Write of `len` bytes of `fill` at `offset` within buffer `id`.
    Write {
        /// Buffer id.
        id: u32,
        /// Byte offset within the buffer (may be negative or past the end
        /// for recorded buggy accesses).
        offset: i64,
        /// Length.
        len: u32,
        /// Fill byte (traces store patterns, not payloads).
        fill: u8,
    },
    /// CPU work: `cycles` with `mem_accesses` memory instructions.
    Compute {
        /// Cycles of work.
        cycles: u64,
        /// Memory-access instructions within.
        mem_accesses: u64,
    },
    /// Blocking I/O of `ns` nanoseconds.
    Io {
        /// Nanoseconds of wait.
        ns: u64,
    },
    /// Read of a *freed* buffer (use-after-free). Plain `Read` ops on freed
    /// ids are skipped at replay; this variant is emitted only by a
    /// freed-tracking recorder ([`Recorder::with_freed_tracking`]) so the
    /// bug survives the round trip through the trace.
    ReadFreed {
        /// Buffer id from the corresponding `Malloc`.
        id: u32,
        /// Byte offset within the freed buffer.
        offset: i64,
        /// Length.
        len: u32,
    },
    /// Write into a *freed* buffer (use-after-free store).
    WriteFreed {
        /// Buffer id.
        id: u32,
        /// Byte offset within the freed buffer.
        offset: i64,
        /// Length.
        len: u32,
        /// Fill byte.
        fill: u8,
    },
    /// A second `free` of an already-freed buffer (double free). Emitted
    /// only by a freed-tracking recorder.
    FreeAgain {
        /// Buffer id.
        id: u32,
    },
    /// Ground-truth incident marker: the workload *knows* the preceding op
    /// was a planted corruption. Metadata for the campaign oracle, not a
    /// memory operation.
    Marker {
        /// The planted incident's class.
        kind: IncidentClass,
    },
}

/// A recorded operation stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Trace {
    ops: Vec<TraceOp>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace::default()
    }

    /// The recorded operations.
    #[must_use]
    pub fn ops(&self) -> &[TraceOp] {
        &self.ops
    }

    /// Number of operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of allocation ops in the trace. Replay feeds every `Malloc`
    /// through the tool's `malloc`, so this is exactly the number of
    /// per-allocation sampling decisions a sampling tool will draw —
    /// campaign-level statistical tests use it as the binomial `n`.
    #[must_use]
    pub fn malloc_count(&self) -> u64 {
        self.ops
            .iter()
            .filter(|op| matches!(op, TraceOp::Malloc { .. }))
            .count() as u64
    }

    /// Appends an operation (used by [`Recorder`]; also handy for building
    /// synthetic traces in tests).
    pub fn push(&mut self, op: TraceOp) {
        self.ops.push(op);
    }

    /// Serialises to a compact line-oriented text format (one op per line).
    #[must_use]
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for op in &self.ops {
            match op {
                TraceOp::Malloc { size, frames } => {
                    let _ = write!(out, "M {size}");
                    for f in frames {
                        let _ = write!(out, " {f:#x}");
                    }
                    let _ = writeln!(out);
                }
                TraceOp::Free { id } => {
                    let _ = writeln!(out, "F {id}");
                }
                TraceOp::Read { id, offset, len } => {
                    let _ = writeln!(out, "R {id} {offset} {len}");
                }
                TraceOp::Write {
                    id,
                    offset,
                    len,
                    fill,
                } => {
                    let _ = writeln!(out, "W {id} {offset} {len} {fill}");
                }
                TraceOp::Compute {
                    cycles,
                    mem_accesses,
                } => {
                    let _ = writeln!(out, "C {cycles} {mem_accesses}");
                }
                TraceOp::Io { ns } => {
                    let _ = writeln!(out, "I {ns}");
                }
                TraceOp::ReadFreed { id, offset, len } => {
                    let _ = writeln!(out, "RF {id} {offset} {len}");
                }
                TraceOp::WriteFreed {
                    id,
                    offset,
                    len,
                    fill,
                } => {
                    let _ = writeln!(out, "WF {id} {offset} {len} {fill}");
                }
                TraceOp::FreeAgain { id } => {
                    let _ = writeln!(out, "FF {id}");
                }
                TraceOp::Marker { kind } => {
                    let tag = match kind {
                        IncidentClass::Overflow => "O",
                        IncidentClass::UseAfterFree => "U",
                        IncidentClass::DoubleFree => "D",
                    };
                    let _ = writeln!(out, "K {tag}");
                }
            }
        }
        out
    }

    /// Parses the text format produced by [`Trace::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut trace = Trace::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let tag = parts.next().expect("non-empty line");
            let err = |what: &str| format!("line {}: {what}: {line:?}", lineno + 1);
            let mut num = |what: &'static str| -> Result<u64, String> {
                let tok = parts.next().ok_or_else(|| err(what))?;
                match tok.strip_prefix("0x") {
                    Some(hex) => u64::from_str_radix(hex, 16).map_err(|_| err(what)),
                    None => tok.parse::<u64>().map_err(|_| err(what)),
                }
            };
            match tag {
                "M" => {
                    let size = num("size")?;
                    let mut frames = Vec::new();
                    for tok in parts.by_ref() {
                        let hex = tok.strip_prefix("0x").unwrap_or(tok);
                        frames.push(u64::from_str_radix(hex, 16).map_err(|_| err("frame"))?);
                    }
                    trace.push(TraceOp::Malloc { size, frames });
                }
                "F" => trace.push(TraceOp::Free {
                    id: num("id")? as u32,
                }),
                "R" => {
                    let id = num("id")? as u32;
                    let offset = parts
                        .next()
                        .and_then(|t| t.parse::<i64>().ok())
                        .ok_or_else(|| err("offset"))?;
                    let len = parts
                        .next()
                        .and_then(|t| t.parse::<u32>().ok())
                        .ok_or_else(|| err("len"))?;
                    trace.push(TraceOp::Read { id, offset, len });
                }
                "W" => {
                    let id = num("id")? as u32;
                    let offset = parts
                        .next()
                        .and_then(|t| t.parse::<i64>().ok())
                        .ok_or_else(|| err("offset"))?;
                    let len = parts
                        .next()
                        .and_then(|t| t.parse::<u32>().ok())
                        .ok_or_else(|| err("len"))?;
                    let fill = parts
                        .next()
                        .and_then(|t| t.parse::<u8>().ok())
                        .ok_or_else(|| err("fill"))?;
                    trace.push(TraceOp::Write {
                        id,
                        offset,
                        len,
                        fill,
                    });
                }
                "C" => {
                    let cycles = num("cycles")?;
                    let mem = num("mem_accesses")?;
                    trace.push(TraceOp::Compute {
                        cycles,
                        mem_accesses: mem,
                    });
                }
                "I" => trace.push(TraceOp::Io { ns: num("ns")? }),
                "RF" => {
                    let id = num("id")? as u32;
                    let offset = parts
                        .next()
                        .and_then(|t| t.parse::<i64>().ok())
                        .ok_or_else(|| err("offset"))?;
                    let len = parts
                        .next()
                        .and_then(|t| t.parse::<u32>().ok())
                        .ok_or_else(|| err("len"))?;
                    trace.push(TraceOp::ReadFreed { id, offset, len });
                }
                "WF" => {
                    let id = num("id")? as u32;
                    let offset = parts
                        .next()
                        .and_then(|t| t.parse::<i64>().ok())
                        .ok_or_else(|| err("offset"))?;
                    let len = parts
                        .next()
                        .and_then(|t| t.parse::<u32>().ok())
                        .ok_or_else(|| err("len"))?;
                    let fill = parts
                        .next()
                        .and_then(|t| t.parse::<u8>().ok())
                        .ok_or_else(|| err("fill"))?;
                    trace.push(TraceOp::WriteFreed {
                        id,
                        offset,
                        len,
                        fill,
                    });
                }
                "FF" => trace.push(TraceOp::FreeAgain {
                    id: num("id")? as u32,
                }),
                "K" => {
                    let kind = match parts.next().ok_or_else(|| err("kind"))? {
                        "O" => IncidentClass::Overflow,
                        "U" => IncidentClass::UseAfterFree,
                        "D" => IncidentClass::DoubleFree,
                        _ => return Err(err("unknown marker kind")),
                    };
                    trace.push(TraceOp::Marker { kind });
                }
                _ => return Err(err("unknown op tag")),
            }
        }
        Ok(trace)
    }

    /// Replays the trace against a tool. Accesses whose buffer was freed
    /// are skipped (a trace replayed under a different layout has no
    /// meaningful address for them); accesses naming an id no `Malloc` ever
    /// bound trip a debug assertion — see [`Replayer::replay`].
    ///
    /// Equivalent to `Replayer::new().replay(self, os, tool)`; campaign
    /// loops that replay many traces should hold one [`Replayer`] and reuse
    /// its buffers instead.
    pub fn replay(&self, os: &mut Os, tool: &mut dyn MemTool) -> RunResult {
        Replayer::new().replay(self, os, tool)
    }

    /// The original per-op-allocating replay, retained as a differential
    /// reference for the [`Replayer`] fast path (equivalence tests and the
    /// `replay` benchmark compare the two). New code should call
    /// [`Trace::replay`].
    pub fn replay_naive(&self, os: &mut Os, tool: &mut dyn MemTool) -> RunResult {
        let mut addrs: HashMap<u32, u64> = HashMap::new();
        let mut freed: HashMap<u32, u64> = HashMap::new();
        let mut next_id: u32 = 0;
        for op in &self.ops {
            match op {
                TraceOp::Malloc { size, frames } => {
                    let stack = CallStack::new(frames);
                    let addr = tool.malloc(os, *size, &stack);
                    addrs.insert(next_id, addr);
                    next_id += 1;
                }
                TraceOp::Free { id } => {
                    if let Some(addr) = addrs.remove(id) {
                        freed.insert(*id, addr);
                        tool.free(os, addr);
                    }
                }
                TraceOp::Read { id, offset, len } => {
                    if let Some(&addr) = addrs.get(id) {
                        let mut buf = vec![0u8; *len as usize];
                        tool.read(os, addr.wrapping_add_signed(*offset), &mut buf);
                    }
                }
                TraceOp::Write {
                    id,
                    offset,
                    len,
                    fill,
                } => {
                    if let Some(&addr) = addrs.get(id) {
                        let data = vec![*fill; *len as usize];
                        tool.write(os, addr.wrapping_add_signed(*offset), &data);
                    }
                }
                TraceOp::Compute {
                    cycles,
                    mem_accesses,
                } => {
                    tool.compute(os, *cycles, *mem_accesses);
                }
                TraceOp::Io { ns } => os.io_wait_ns(*ns),
                TraceOp::ReadFreed { id, offset, len } => {
                    if let Some(&addr) = freed.get(id) {
                        let mut buf = vec![0u8; *len as usize];
                        tool.read(os, addr.wrapping_add_signed(*offset), &mut buf);
                    }
                }
                TraceOp::WriteFreed {
                    id,
                    offset,
                    len,
                    fill,
                } => {
                    if let Some(&addr) = freed.get(id) {
                        let data = vec![*fill; *len as usize];
                        tool.write(os, addr.wrapping_add_signed(*offset), &data);
                    }
                }
                TraceOp::FreeAgain { id } => {
                    if let Some(&addr) = freed.get(id) {
                        tool.free(os, addr);
                    }
                }
                TraceOp::Marker { kind } => tool.mark_incident(*kind),
            }
        }
        tool.finish(os);
        RunResult {
            cpu_cycles: os.cpu_cycles(),
            reports: tool.reports(),
            heap_stats: tool.heap().stats(),
        }
    }
}

/// Flag bit marking a retired (freed) slot in the [`Replayer`] slot map.
/// The freed address is kept under the flag so freed-access ops
/// (`ReadFreed`/`WriteFreed`/`FreeAgain`) can still resolve it; plain
/// accesses skip flagged slots. Heap virtual addresses never reach bit 63,
/// so the flag cannot collide with a live address.
const RETIRED: u64 = 1 << 63;

/// Allocation-free trace replay engine.
///
/// Replaying is the campaign hot loop: every cell replays one trace five
/// times (once per panel tool), and the original [`Trace::replay_naive`]
/// heap-allocated a scratch `Vec` for every `Read`/`Write` op and
/// translated ids through a `HashMap`. Ids are assigned densely at `Malloc`
/// time, so a `Vec<u64>` slot map (with the [`RETIRED`] flag bit marking
/// dead slots)
/// replaces the hash table, and one grow-only scratch buffer serves every
/// payload. The struct is reusable across traces: buffers are cleared, not
/// dropped, so a worker thread replaying an entire campaign shard touches
/// the allocator only when a trace's largest access grows the scratch.
#[derive(Debug, Default)]
pub struct Replayer {
    /// Slot map from dense buffer id to replay-tool address.
    addrs: Vec<u64>,
    /// Scratch payload reused for every `Read`/`Write`.
    scratch: Vec<u8>,
}

impl Replayer {
    /// Creates a replayer with empty buffers.
    #[must_use]
    pub fn new() -> Self {
        Replayer::default()
    }

    /// Ensures the scratch buffer can hold `len` bytes and returns it.
    /// Contents are whatever the previous op left behind — `Read` payloads
    /// are pure out-params and `Write` fills the prefix it sends.
    fn scratch_mut(&mut self, len: usize) -> &mut [u8] {
        if self.scratch.len() < len {
            self.scratch.resize(len, 0);
        }
        &mut self.scratch[..len]
    }

    /// Replays `trace` against a tool, reusing this replayer's buffers.
    ///
    /// Behaviour is identical to the retained [`Trace::replay_naive`]
    /// reference, with one tightening: an access naming an id that no
    /// `Malloc` ever bound indicates a recorder (or synthetic-trace) bug,
    /// and trips a debug assertion instead of silently shrinking the replay
    /// to an empty run. Accesses to *freed* ids are still skipped, matching
    /// the reference.
    pub fn replay(&mut self, trace: &Trace, os: &mut Os, tool: &mut dyn MemTool) -> RunResult {
        self.addrs.clear();
        for op in &trace.ops {
            match op {
                TraceOp::Malloc { size, frames } => {
                    let stack = CallStack::new(frames);
                    self.addrs.push(tool.malloc(os, *size, &stack));
                }
                TraceOp::Free { id } => {
                    debug_assert!(
                        (*id as usize) < self.addrs.len(),
                        "trace frees id {id} but only {} ids were bound",
                        self.addrs.len()
                    );
                    if let Some(slot) = self.addrs.get_mut(*id as usize) {
                        let addr = *slot;
                        if addr & RETIRED == 0 {
                            *slot = addr | RETIRED;
                            tool.free(os, addr);
                        }
                    }
                }
                TraceOp::Read { id, offset, len } => {
                    debug_assert!(
                        (*id as usize) < self.addrs.len(),
                        "trace reads id {id} but only {} ids were bound",
                        self.addrs.len()
                    );
                    match self.addrs.get(*id as usize).copied() {
                        Some(addr) if addr & RETIRED == 0 => {
                            let addr = addr.wrapping_add_signed(*offset);
                            let buf = self.scratch_mut(*len as usize);
                            tool.read(os, addr, buf);
                        }
                        _ => {}
                    }
                }
                TraceOp::Write {
                    id,
                    offset,
                    len,
                    fill,
                } => {
                    debug_assert!(
                        (*id as usize) < self.addrs.len(),
                        "trace writes id {id} but only {} ids were bound",
                        self.addrs.len()
                    );
                    match self.addrs.get(*id as usize).copied() {
                        Some(addr) if addr & RETIRED == 0 => {
                            let addr = addr.wrapping_add_signed(*offset);
                            let data = self.scratch_mut(*len as usize);
                            data.fill(*fill);
                            tool.write(os, addr, data);
                        }
                        _ => {}
                    }
                }
                TraceOp::Compute {
                    cycles,
                    mem_accesses,
                } => {
                    tool.compute(os, *cycles, *mem_accesses);
                }
                TraceOp::Io { ns } => os.io_wait_ns(*ns),
                TraceOp::ReadFreed { id, offset, len } => {
                    debug_assert!(
                        (*id as usize) < self.addrs.len(),
                        "trace reads freed id {id} but only {} ids were bound",
                        self.addrs.len()
                    );
                    match self.addrs.get(*id as usize).copied() {
                        Some(slot) if slot & RETIRED != 0 => {
                            let addr = (slot & !RETIRED).wrapping_add_signed(*offset);
                            let buf = self.scratch_mut(*len as usize);
                            tool.read(os, addr, buf);
                        }
                        _ => {}
                    }
                }
                TraceOp::WriteFreed {
                    id,
                    offset,
                    len,
                    fill,
                } => {
                    debug_assert!(
                        (*id as usize) < self.addrs.len(),
                        "trace writes freed id {id} but only {} ids were bound",
                        self.addrs.len()
                    );
                    match self.addrs.get(*id as usize).copied() {
                        Some(slot) if slot & RETIRED != 0 => {
                            let addr = (slot & !RETIRED).wrapping_add_signed(*offset);
                            let data = self.scratch_mut(*len as usize);
                            data.fill(*fill);
                            tool.write(os, addr, data);
                        }
                        _ => {}
                    }
                }
                TraceOp::FreeAgain { id } => {
                    debug_assert!(
                        (*id as usize) < self.addrs.len(),
                        "trace re-frees id {id} but only {} ids were bound",
                        self.addrs.len()
                    );
                    match self.addrs.get(*id as usize).copied() {
                        Some(slot) if slot & RETIRED != 0 => {
                            tool.free(os, slot & !RETIRED);
                        }
                        _ => {}
                    }
                }
                TraceOp::Marker { kind } => tool.mark_incident(*kind),
            }
        }
        tool.finish(os);
        RunResult {
            cpu_cycles: os.cpu_cycles(),
            reports: tool.reports(),
            heap_stats: tool.heap().stats(),
        }
    }
}

/// A [`MemTool`] wrapper that records every operation into a [`Trace`]
/// while forwarding to the inner tool.
pub struct Recorder<'a> {
    inner: &'a mut dyn MemTool,
    trace: Trace,
    ids: HashMap<u64, u32>,
    next_id: u32,
    /// When set, accesses to freed buffers are recorded as
    /// `ReadFreed`/`WriteFreed`/`FreeAgain` instead of being re-attributed
    /// to the nearest live buffer (or silently recorded as a plain `Free`
    /// miss). Off by default: existing workloads produce byte-identical
    /// traces.
    track_freed: bool,
    /// Freed spans still addressable by freed-access ops: base address →
    /// (buffer id, payload size at free time).
    freed_spans: HashMap<u64, (u32, u64)>,
}

impl<'a> Recorder<'a> {
    /// Wraps a tool.
    pub fn new(inner: &'a mut dyn MemTool) -> Self {
        Recorder {
            inner,
            trace: Trace::new(),
            ids: HashMap::new(),
            next_id: 0,
            track_freed: false,
            freed_spans: HashMap::new(),
        }
    }

    /// Wraps a tool with freed-buffer tracking enabled, for workloads whose
    /// planted bugs touch freed memory (see
    /// [`Workload::records_freed_accesses`](crate::Workload::records_freed_accesses)).
    pub fn with_freed_tracking(inner: &'a mut dyn MemTool) -> Self {
        let mut rec = Recorder::new(inner);
        rec.track_freed = true;
        rec
    }

    /// Consumes the recorder, returning the captured trace.
    #[must_use]
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// The buffer id and base address containing `addr`, if known. Accesses
    /// outside every recorded buffer (e.g. to static roots) are recorded
    /// relative to the nearest buffer at or below the address; accesses
    /// before the first buffer are dropped from the trace.
    fn locate(&self, addr: u64) -> Option<(u32, i64)> {
        // Exact base match first, then containment via the inner heap.
        if let Some(&id) = self.ids.get(&addr) {
            return Some((id, 0));
        }
        let owner = self
            .ids
            .iter()
            .filter(|(&base, _)| base <= addr)
            .max_by_key(|(&base, _)| base)?;
        Some((*owner.1, (addr - owner.0) as i64))
    }

    /// The freed buffer id and offset for `addr`, if `addr` falls inside a
    /// tracked freed span. Exact base match first, then containment within
    /// the span's payload recorded at free time.
    fn locate_freed(&self, addr: u64) -> Option<(u32, i64)> {
        if let Some(&(id, _)) = self.freed_spans.get(&addr) {
            return Some((id, 0));
        }
        let owner = self
            .freed_spans
            .iter()
            .filter(|(&base, &(_, size))| base <= addr && addr < base + size.max(1))
            .max_by_key(|(&base, _)| base)?;
        Some((owner.1 .0, (addr - owner.0) as i64))
    }
}

impl MemTool for Recorder<'_> {
    fn name(&self) -> &'static str {
        "recorder"
    }

    fn heap(&self) -> &safemem_alloc::Heap {
        self.inner.heap()
    }

    fn malloc(&mut self, os: &mut Os, size: u64, stack: &CallStack) -> u64 {
        let addr = self.inner.malloc(os, size, stack);
        self.trace.push(TraceOp::Malloc {
            size,
            frames: stack.frames().to_vec(),
        });
        self.ids.insert(addr, self.next_id);
        self.next_id += 1;
        // Address reuse retires the freed span: the id now bound to this
        // base owns subsequent accesses.
        self.freed_spans.remove(&addr);
        addr
    }

    fn free(&mut self, os: &mut Os, addr: u64) {
        if let Some(id) = self.ids.remove(&addr) {
            if self.track_freed {
                let payload = self
                    .inner
                    .heap()
                    .allocation_at(addr)
                    .map_or(0, |a| a.payload);
                self.freed_spans.insert(addr, (id, payload));
            }
            self.trace.push(TraceOp::Free { id });
        } else if self.track_freed {
            if let Some(&(id, _)) = self.freed_spans.get(&addr) {
                self.trace.push(TraceOp::FreeAgain { id });
            }
        }
        self.inner.free(os, addr);
    }

    fn realloc(&mut self, os: &mut Os, addr: u64, new_size: u64, stack: &CallStack) -> u64 {
        // Forward to the inner tool; record as malloc + free (the data copy
        // is an artefact of the tools, not of the program).
        let new_addr = self.inner.realloc(os, addr, new_size, stack);
        self.trace.push(TraceOp::Malloc {
            size: new_size,
            frames: stack.frames().to_vec(),
        });
        let new_id = self.next_id;
        self.next_id += 1;
        if let Some(old_id) = self.ids.remove(&addr) {
            self.trace.push(TraceOp::Free { id: old_id });
        }
        self.ids.insert(new_addr, new_id);
        new_addr
    }

    fn read(&mut self, os: &mut Os, addr: u64, buf: &mut [u8]) {
        if self.track_freed {
            if let Some((id, offset)) = self.locate_freed(addr) {
                self.trace.push(TraceOp::ReadFreed {
                    id,
                    offset,
                    len: buf.len() as u32,
                });
                self.inner.read(os, addr, buf);
                return;
            }
        }
        if let Some((id, offset)) = self.locate(addr) {
            self.trace.push(TraceOp::Read {
                id,
                offset,
                len: buf.len() as u32,
            });
        }
        self.inner.read(os, addr, buf);
    }

    fn write(&mut self, os: &mut Os, addr: u64, data: &[u8]) {
        if self.track_freed {
            if let Some((id, offset)) = self.locate_freed(addr) {
                self.trace.push(TraceOp::WriteFreed {
                    id,
                    offset,
                    len: data.len() as u32,
                    fill: data.first().copied().unwrap_or(0),
                });
                self.inner.write(os, addr, data);
                return;
            }
        }
        if let Some((id, offset)) = self.locate(addr) {
            self.trace.push(TraceOp::Write {
                id,
                offset,
                len: data.len() as u32,
                fill: data.first().copied().unwrap_or(0),
            });
        }
        self.inner.write(os, addr, data);
    }

    fn compute(&mut self, os: &mut Os, cycles: u64, mem_accesses: u64) {
        self.trace.push(TraceOp::Compute {
            cycles,
            mem_accesses,
        });
        self.inner.compute(os, cycles, mem_accesses);
    }

    fn finish(&mut self, os: &mut Os) {
        self.inner.finish(os);
    }

    fn reports(&self) -> Vec<safemem_core::BugReport> {
        self.inner.reports()
    }

    fn mark_incident(&mut self, kind: IncidentClass) {
        self.trace.push(TraceOp::Marker { kind });
        self.inner.mark_incident(kind);
    }

    fn survival(&self) -> Option<safemem_core::SurvivalSummary> {
        self.inner.survival()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{InputMode, RunConfig};
    use safemem_core::{NullTool, SafeMem};

    #[test]
    fn text_roundtrip() {
        let mut t = Trace::new();
        t.push(TraceOp::Malloc {
            size: 100,
            frames: vec![0x401000, 0x402000],
        });
        t.push(TraceOp::Write {
            id: 0,
            offset: 0,
            len: 100,
            fill: 7,
        });
        t.push(TraceOp::Read {
            id: 0,
            offset: 10,
            len: 20,
        });
        t.push(TraceOp::Compute {
            cycles: 5000,
            mem_accesses: 100,
        });
        t.push(TraceOp::Io { ns: 2000 });
        t.push(TraceOp::Free { id: 0 });
        let text = t.to_text();
        let parsed = Trace::from_text(&text).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Trace::from_text("X 1 2 3").is_err());
        assert!(Trace::from_text("F notanumber").is_err());
        assert!(Trace::from_text("K Q").is_err());
        assert!(Trace::from_text("# comment only\n\n").unwrap().is_empty());
    }

    #[test]
    fn freed_ops_and_markers_roundtrip() {
        let mut t = Trace::new();
        t.push(TraceOp::Malloc {
            size: 64,
            frames: vec![0x1],
        });
        t.push(TraceOp::Free { id: 0 });
        t.push(TraceOp::ReadFreed {
            id: 0,
            offset: 8,
            len: 4,
        });
        t.push(TraceOp::Marker {
            kind: IncidentClass::UseAfterFree,
        });
        t.push(TraceOp::WriteFreed {
            id: 0,
            offset: 0,
            len: 16,
            fill: 9,
        });
        t.push(TraceOp::FreeAgain { id: 0 });
        t.push(TraceOp::Marker {
            kind: IncidentClass::DoubleFree,
        });
        t.push(TraceOp::Marker {
            kind: IncidentClass::Overflow,
        });
        let parsed = Trace::from_text(&t.to_text()).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn freed_tracking_recorder_emits_freed_ops() {
        let mut os = Os::with_defaults(1 << 22);
        let mut base = NullTool::new();
        let mut recorder = Recorder::with_freed_tracking(&mut base);
        let stack = CallStack::new(&[0x10]);
        let a = recorder.malloc(&mut os, 64, &stack);
        recorder.write(&mut os, a, &[1u8; 64]);
        recorder.free(&mut os, a);
        recorder.read(&mut os, a + 8, &mut [0u8; 4]); // UAF read
        recorder.free(&mut os, a); // double free
        let trace = recorder.into_trace();
        assert!(trace.ops().iter().any(|op| matches!(
            op,
            TraceOp::ReadFreed {
                id: 0,
                offset: 8,
                len: 4
            }
        )));
        assert!(trace
            .ops()
            .iter()
            .any(|op| matches!(op, TraceOp::FreeAgain { id: 0 })));
    }

    #[test]
    fn untracked_recorder_trace_is_unchanged_by_freed_accesses() {
        // Recorder::new must keep emitting the exact op stream it always
        // did, even when the workload touches freed memory.
        let run = |tracking: bool| {
            let mut os = Os::with_defaults(1 << 22);
            let mut base = NullTool::new();
            let mut recorder = if tracking {
                Recorder::with_freed_tracking(&mut base)
            } else {
                Recorder::new(&mut base)
            };
            let stack = CallStack::new(&[0x10]);
            let a = recorder.malloc(&mut os, 64, &stack);
            recorder.write(&mut os, a, &[1u8; 64]);
            recorder.free(&mut os, a);
            recorder.read(&mut os, a + 8, &mut [0u8; 4]);
            recorder.into_trace()
        };
        let plain = run(false);
        let tracked = run(true);
        assert!(!plain
            .ops()
            .iter()
            .any(|op| matches!(op, TraceOp::ReadFreed { .. })));
        assert!(tracked
            .ops()
            .iter()
            .any(|op| matches!(op, TraceOp::ReadFreed { .. })));
    }

    #[test]
    fn replayer_matches_naive_on_freed_op_traces() {
        let mut t = Trace::new();
        t.push(TraceOp::Malloc {
            size: 100,
            frames: vec![0x1],
        });
        t.push(TraceOp::Write {
            id: 0,
            offset: 0,
            len: 100,
            fill: 7,
        });
        t.push(TraceOp::Free { id: 0 });
        t.push(TraceOp::ReadFreed {
            id: 0,
            offset: 16,
            len: 8,
        });
        t.push(TraceOp::Marker {
            kind: IncidentClass::UseAfterFree,
        });
        t.push(TraceOp::FreeAgain { id: 0 });
        t.push(TraceOp::Marker {
            kind: IncidentClass::DoubleFree,
        });
        let naive = {
            let mut os = Os::with_defaults(1 << 22);
            let mut tool = SafeMem::builder().leak_detection(false).build(&mut os);
            t.replay_naive(&mut os, &mut tool)
        };
        let fast = {
            let mut os = Os::with_defaults(1 << 22);
            let mut tool = SafeMem::builder().leak_detection(false).build(&mut os);
            Replayer::new().replay(&t, &mut os, &mut tool)
        };
        assert_eq!(naive, fast);
        assert!(naive.corruption_detected(), "{:?}", naive.reports);
    }

    #[test]
    fn recorded_overflow_replays_against_safemem() {
        // Record a buggy run under the baseline (which sees nothing)...
        let mut os = Os::with_defaults(1 << 22);
        let mut base = NullTool::new();
        let mut recorder = Recorder::new(&mut base);
        let stack = CallStack::new(&[0x1]);
        let a = recorder.malloc(&mut os, 100, &stack);
        recorder.write(&mut os, a, &[1u8; 100]);
        recorder.write(&mut os, a + 130, &[9u8; 4]); // overflow
        recorder.free(&mut os, a);
        assert!(recorder.reports().is_empty(), "baseline sees nothing");
        let trace = recorder.into_trace();

        // ...then replay the identical ops under SafeMem: bug caught.
        let mut os = Os::with_defaults(1 << 22);
        let mut tool = SafeMem::builder().leak_detection(false).build(&mut os);
        let result = trace.replay(&mut os, &mut tool);
        assert!(result.corruption_detected(), "{:?}", result.reports);
    }

    #[test]
    fn workload_trace_replay_detects_same_bug() {
        // Record gzip (buggy) through the recorder, replay under SafeMem.
        let gzip = crate::registry::workload_by_name("gzip").unwrap();
        let mut os = Os::with_defaults(1 << 25);
        let mut base = NullTool::new();
        let mut recorder = Recorder::new(&mut base);
        let cfg = RunConfig {
            input: InputMode::Buggy,
            requests: Some(6),
            ..RunConfig::default()
        };
        gzip.run(&mut os, &mut recorder, &cfg);
        let trace = recorder.into_trace();
        assert!(trace.len() > 50, "non-trivial trace: {} ops", trace.len());

        let mut os = Os::with_defaults(1 << 25);
        let mut tool = SafeMem::builder().leak_detection(false).build(&mut os);
        let result = trace.replay(&mut os, &mut tool);
        assert!(result.corruption_detected(), "{:?}", result.reports);
    }

    #[test]
    fn replayer_matches_naive_reference_on_a_recorded_workload() {
        let gzip = crate::registry::workload_by_name("gzip").unwrap();
        let mut os = Os::with_defaults(1 << 25);
        let mut base = NullTool::new();
        let mut recorder = Recorder::new(&mut base);
        let cfg = RunConfig {
            input: InputMode::Buggy,
            requests: Some(6),
            ..RunConfig::default()
        };
        gzip.run(&mut os, &mut recorder, &cfg);
        let trace = recorder.into_trace();

        let naive = {
            let mut os = Os::with_defaults(1 << 25);
            let mut tool = SafeMem::builder().build(&mut os);
            trace.replay_naive(&mut os, &mut tool)
        };
        let fast = {
            let mut os = Os::with_defaults(1 << 25);
            let mut tool = SafeMem::builder().build(&mut os);
            Replayer::new().replay(&trace, &mut os, &mut tool)
        };
        assert_eq!(naive, fast);
    }

    #[test]
    fn replayer_reuse_across_traces_is_clean() {
        // A replayer carried across traces must not leak slot-map state from
        // the previous trace into the next (ids restart at 0 per trace).
        let mut a = Trace::new();
        a.push(TraceOp::Malloc {
            size: 64,
            frames: vec![0x1],
        });
        a.push(TraceOp::Free { id: 0 });
        let mut b = Trace::new();
        b.push(TraceOp::Malloc {
            size: 32,
            frames: vec![0x2],
        });
        b.push(TraceOp::Write {
            id: 0,
            offset: 0,
            len: 32,
            fill: 5,
        });
        b.push(TraceOp::Free { id: 0 });

        let mut replayer = Replayer::new();
        let fresh = {
            let mut os = Os::with_defaults(1 << 22);
            let mut tool = SafeMem::builder().build(&mut os);
            b.replay(&mut os, &mut tool)
        };
        let mut os = Os::with_defaults(1 << 22);
        let mut tool = SafeMem::builder().build(&mut os);
        replayer.replay(&a, &mut os, &mut tool);
        let mut os = Os::with_defaults(1 << 22);
        let mut tool = SafeMem::builder().build(&mut os);
        let reused = replayer.replay(&b, &mut os, &mut tool);
        assert_eq!(fresh, reused);
    }

    #[test]
    fn use_after_free_in_a_trace_is_skipped_not_asserted() {
        // Freed ids are a legitimate layout artefact; only never-bound ids
        // are recorder bugs.
        let mut t = Trace::new();
        t.push(TraceOp::Malloc {
            size: 16,
            frames: vec![0x1],
        });
        t.push(TraceOp::Free { id: 0 });
        t.push(TraceOp::Read {
            id: 0,
            offset: 0,
            len: 8,
        });
        let mut os = Os::with_defaults(1 << 22);
        let mut tool = NullTool::new();
        let result = t.replay(&mut os, &mut tool);
        assert!(result.reports.is_empty());
    }

    #[test]
    #[should_panic(expected = "ids were bound")]
    #[cfg(debug_assertions)]
    fn never_bound_id_trips_the_debug_assertion() {
        let mut t = Trace::new();
        t.push(TraceOp::Read {
            id: 7,
            offset: 0,
            len: 8,
        });
        let mut os = Os::with_defaults(1 << 22);
        let mut tool = NullTool::new();
        t.replay(&mut os, &mut tool);
    }

    #[test]
    fn replay_is_deterministic() {
        let mut t = Trace::new();
        t.push(TraceOp::Malloc {
            size: 64,
            frames: vec![0x1],
        });
        t.push(TraceOp::Write {
            id: 0,
            offset: 0,
            len: 64,
            fill: 3,
        });
        t.push(TraceOp::Compute {
            cycles: 10_000,
            mem_accesses: 500,
        });
        t.push(TraceOp::Free { id: 0 });
        let run = |t: &Trace| {
            let mut os = Os::with_defaults(1 << 22);
            let mut tool = SafeMem::builder().build(&mut os);
            t.replay(&mut os, &mut tool).cpu_cycles
        };
        assert_eq!(run(&t), run(&t));
    }
}
