//! Property tests for trace record/replay: text-format round-tripping for
//! arbitrary traces, and behavioural equivalence between a recorded run and
//! its replay.

use proptest::prelude::*;
use safemem_core::{NullTool, SafeMem};
use safemem_os::Os;
use safemem_workloads::{Trace, TraceOp};

fn trace_op() -> impl Strategy<Value = TraceOp> {
    prop_oneof![
        (
            (1u64..4096),
            proptest::collection::vec(1u64..u64::MAX, 1..5)
        )
            .prop_map(|(size, frames)| TraceOp::Malloc { size, frames }),
        (0u32..64).prop_map(|id| TraceOp::Free { id }),
        ((0u32..64), (0i64..4096), (1u32..512)).prop_map(|(id, offset, len)| TraceOp::Read {
            id,
            offset,
            len
        }),
        ((0u32..64), (0i64..4096), (1u32..512), any::<u8>()).prop_map(|(id, offset, len, fill)| {
            TraceOp::Write {
                id,
                offset,
                len,
                fill,
            }
        }),
        ((1u64..1_000_000), (0u64..100_000)).prop_map(|(cycles, mem_accesses)| TraceOp::Compute {
            cycles,
            mem_accesses
        }),
        (1u64..10_000_000).prop_map(|ns| TraceOp::Io { ns }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any trace survives a text round trip bit-exactly.
    #[test]
    fn prop_text_roundtrip(ops in proptest::collection::vec(trace_op(), 0..60)) {
        let mut trace = Trace::new();
        for op in ops {
            trace.push(op);
        }
        let text = trace.to_text();
        let parsed = Trace::from_text(&text).expect("own output parses");
        prop_assert_eq!(parsed, trace);
    }

    /// Replaying a trace is deterministic: two replays under identical
    /// fresh tools consume identical CPU time and produce identical report
    /// counts. (Traces here are *well-formed programs*: in-bounds accesses
    /// to live buffers only.)
    #[test]
    fn prop_replay_deterministic(
        sizes in proptest::collection::vec(1u64..800, 1..12),
    ) {
        let mut trace = Trace::new();
        for (i, &size) in sizes.iter().enumerate() {
            trace.push(TraceOp::Malloc { size, frames: vec![0x400_000, i as u64] });
            trace.push(TraceOp::Write { id: i as u32, offset: 0, len: size as u32, fill: i as u8 });
            trace.push(TraceOp::Compute { cycles: 10_000, mem_accesses: 1_000 });
            trace.push(TraceOp::Read { id: i as u32, offset: 0, len: size as u32 });
            trace.push(TraceOp::Free { id: i as u32 });
        }
        let run = |trace: &Trace| {
            let mut os = Os::with_defaults(1 << 24);
            let mut tool = SafeMem::builder().build(&mut os);
            let result = trace.replay(&mut os, &mut tool);
            (result.cpu_cycles, result.reports.len())
        };
        prop_assert_eq!(run(&trace), run(&trace));
    }

    /// A well-formed trace replays cleanly under both the baseline and
    /// SafeMem (no false reports from the replay machinery itself).
    #[test]
    fn prop_clean_traces_replay_clean(
        sizes in proptest::collection::vec(1u64..800, 1..10),
    ) {
        let mut trace = Trace::new();
        for (i, &size) in sizes.iter().enumerate() {
            trace.push(TraceOp::Malloc { size, frames: vec![0x400_000, i as u64] });
            trace.push(TraceOp::Write { id: i as u32, offset: 0, len: size as u32, fill: 7 });
        }
        for i in 0..sizes.len() {
            trace.push(TraceOp::Free { id: i as u32 });
        }
        let mut os = Os::with_defaults(1 << 24);
        let mut base = NullTool::new();
        prop_assert!(trace.replay(&mut os, &mut base).reports.is_empty());
        let mut os = Os::with_defaults(1 << 24);
        let mut tool = SafeMem::builder().build(&mut os);
        let result = trace.replay(&mut os, &mut tool);
        prop_assert!(
            !result.reports.iter().any(safemem_core::BugReport::is_corruption),
            "{:?}",
            result.reports
        );
    }
}
