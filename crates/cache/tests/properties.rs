//! Property tests: the cache hierarchy must be a transparent layer — any
//! sequence of reads, writes, and flushes observes exactly the semantics of a
//! flat byte array, and the exclusive-residency invariant always holds.

use proptest::prelude::*;
use safemem_cache::{CacheConfig, Hierarchy, LineBacking, Traffic};

#[derive(Debug, Clone)]
enum Op {
    Read { addr: u64, len: usize },
    Write { addr: u64, data: Vec<u8> },
    FlushLine { addr: u64 },
    FlushAll,
}

fn op_strategy(mem_size: u64) -> impl Strategy<Value = Op> {
    let max = mem_size - 256;
    prop_oneof![
        (0..max, 1usize..128).prop_map(|(addr, len)| Op::Read { addr, len }),
        (0..max, proptest::collection::vec(any::<u8>(), 1..128))
            .prop_map(|(addr, data)| Op::Write { addr, data }),
        (0..max).prop_map(|addr| Op::FlushLine { addr }),
        Just(Op::FlushAll),
    ]
}

struct Ram(Vec<u8>);

impl LineBacking for Ram {
    type Error = std::convert::Infallible;
    fn read_line(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), Self::Error> {
        let a = addr as usize;
        buf.copy_from_slice(&self.0[a..a + buf.len()]);
        Ok(())
    }
    fn write_line(&mut self, addr: u64, data: &[u8]) {
        let a = addr as usize;
        self.0[a..a + data.len()].copy_from_slice(data);
    }
}

fn tiny_hierarchy(line_size: u32) -> Hierarchy {
    // Deliberately tiny so random workloads force constant evictions.
    Hierarchy::new(vec![
        CacheConfig {
            line_size,
            sets: 2,
            ways: 2,
        },
        CacheConfig {
            line_size,
            sets: 4,
            ways: 2,
        },
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random op sequences through the hierarchy match a flat shadow array.
    #[test]
    fn prop_hierarchy_is_transparent(ops in proptest::collection::vec(op_strategy(4096), 1..80)) {
        let mut h = tiny_hierarchy(64);
        let mut ram = Ram(vec![0u8; 4096]);
        let mut shadow = vec![0u8; 4096];
        let mut t = Traffic::new(2);
        for op in &ops {
            match op {
                Op::Read { addr, len } => {
                    let mut buf = vec![0u8; *len];
                    h.read(*addr, &mut buf, &mut ram, &mut t).unwrap();
                    prop_assert_eq!(&buf[..], &shadow[*addr as usize..*addr as usize + len]);
                }
                Op::Write { addr, data } => {
                    h.write(*addr, data, &mut ram, &mut t).unwrap();
                    shadow[*addr as usize..*addr as usize + data.len()].copy_from_slice(data);
                }
                Op::FlushLine { addr } => {
                    h.flush_line(*addr, &mut ram, &mut t);
                }
                Op::FlushAll => h.flush_all(&mut ram, &mut t),
            }
            h.assert_exclusive();
        }
        // After a full flush, memory holds exactly the shadow contents.
        h.flush_all(&mut ram, &mut t);
        prop_assert_eq!(ram.0, shadow);
    }

    /// The transparency property holds for other line sizes too (the
    /// granularity ablation uses 32- and 128-byte lines).
    #[test]
    fn prop_transparent_other_line_sizes(
        ops in proptest::collection::vec(op_strategy(2048), 1..40),
        line_size in prop_oneof![Just(32u32), Just(128u32)],
    ) {
        let mut h = tiny_hierarchy(line_size);
        let mut ram = Ram(vec![0u8; 2048]);
        let mut shadow = vec![0u8; 2048];
        let mut t = Traffic::new(2);
        for op in &ops {
            match op {
                Op::Read { addr, len } => {
                    let mut buf = vec![0u8; *len];
                    h.read(*addr, &mut buf, &mut ram, &mut t).unwrap();
                    prop_assert_eq!(&buf[..], &shadow[*addr as usize..*addr as usize + len]);
                }
                Op::Write { addr, data } => {
                    h.write(*addr, data, &mut ram, &mut t).unwrap();
                    shadow[*addr as usize..*addr as usize + data.len()].copy_from_slice(data);
                }
                Op::FlushLine { addr } => {
                    h.flush_line(*addr, &mut ram, &mut t);
                }
                Op::FlushAll => h.flush_all(&mut ram, &mut t),
            }
        }
        h.flush_all(&mut ram, &mut t);
        prop_assert_eq!(ram.0, shadow);
    }

    /// After flushing a line, the next access to it always reaches memory.
    #[test]
    fn prop_flush_forces_memory_access(addr in 0u64..3800) {
        let mut h = tiny_hierarchy(64);
        let mut ram = Ram(vec![0u8; 4096]);
        let mut t = Traffic::new(2);
        h.write(addr, &[1, 2, 3], &mut ram, &mut t).unwrap();
        h.flush_line(addr, &mut ram, &mut t);
        let before = t.memory_reads;
        let mut buf = [0u8; 3];
        h.read(addr, &mut buf, &mut ram, &mut t).unwrap();
        prop_assert!(t.memory_reads > before);
        prop_assert_eq!(buf, [1, 2, 3]);
    }
}
