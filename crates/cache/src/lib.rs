//! Cache hierarchy simulator for the SafeMem reproduction.
//!
//! SafeMem's correctness argument (paper §2.2.2, "Dealing with Cache
//! Effects") depends on processor caches in two ways:
//!
//! 1. **Cache filtering** — ECC is only checked on *memory* accesses, so a
//!    watched line must be flushed from the caches when it is armed; the
//!    first subsequent access then misses, reaches memory, and triggers the
//!    ECC fault. Later accesses may be cache hits and are invisible, which is
//!    fine because only the *first* access matters.
//! 2. **Write detection** — writes to memory do not trigger ECC checks, but a
//!    write to an uncached line must first *refill* it (write-allocate),
//!    and that refill read does check. So flushing also makes writes
//!    detectable.
//!
//! This crate provides a byte-accurate, multi-level, *exclusive* (a line
//! lives in at most one level), write-back, write-allocate, LRU cache
//! hierarchy. The memory below it is abstracted by the [`LineBacking`] trait
//! so the cache crate stays independent of the ECC model; the machine crate
//! wires the two together.
//!
//! # Example
//!
//! ```
//! use safemem_cache::{CacheConfig, Hierarchy, LineBacking, Traffic};
//!
//! /// A trivial RAM backing.
//! struct Ram(Vec<u8>);
//! impl LineBacking for Ram {
//!     type Error = std::convert::Infallible;
//!     fn read_line(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), Self::Error> {
//!         let a = addr as usize;
//!         buf.copy_from_slice(&self.0[a..a + buf.len()]);
//!         Ok(())
//!     }
//!     fn write_line(&mut self, addr: u64, data: &[u8]) {
//!         let a = addr as usize;
//!         self.0[a..a + data.len()].copy_from_slice(data);
//!     }
//! }
//!
//! let mut ram = Ram(vec![0; 4096]);
//! let mut hier = Hierarchy::new(vec![
//!     CacheConfig { line_size: 64, sets: 2, ways: 2 },
//!     CacheConfig { line_size: 64, sets: 4, ways: 4 },
//! ]);
//! let mut t = Traffic::new(2);
//! hier.write(0x100, &[1, 2, 3], &mut ram, &mut t).unwrap();
//! let mut buf = [0u8; 3];
//! hier.read(0x100, &mut buf, &mut ram, &mut t).unwrap();
//! assert_eq!(buf, [1, 2, 3]);
//! assert_eq!(t.level_hits[0], 1); // second access hit in L1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// The memory interface below the cache hierarchy.
///
/// Implemented by the machine crate over the ECC controller (where
/// `Error = EccFault`) and by plain RAM shims in tests. A `read_line` error
/// aborts the refill: the line is *not* installed, modelling a load that
/// takes an ECC interrupt instead of retiring.
pub trait LineBacking {
    /// Error raised by a failed line read (e.g. an uncorrectable ECC fault).
    type Error;
    /// Reads one full line at `addr` (line-aligned) into `buf`.
    ///
    /// # Errors
    ///
    /// Returns `Self::Error` if the line cannot be delivered.
    fn read_line(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), Self::Error>;
    /// Writes one full line at `addr` (line-aligned). Writes never fail:
    /// memory writes do not perform ECC checks.
    fn write_line(&mut self, addr: u64, data: &[u8]);
    /// Writes an arbitrary (possibly partial-line) span directly to memory
    /// without any verification — the path a no-write-allocate cache takes
    /// on a write miss. The default performs a checked read-modify-write;
    /// real memory controllers override it with an unchecked merge.
    ///
    /// # Errors
    ///
    /// The default forwards `read_line` errors; overrides typically never
    /// fail (memory writes do not verify).
    fn write_through(&mut self, addr: u64, data: &[u8]) -> Result<(), Self::Error> {
        // Default: checked RMW of each touched line.
        let line = 64u64;
        let mut done = 0usize;
        while done < data.len() {
            let cur = addr + done as u64;
            let line_addr = cur & !(line - 1);
            let mut buf = vec![0u8; line as usize];
            self.read_line(line_addr, &mut buf)?;
            let lo = (cur - line_addr) as usize;
            let n = ((line_addr + line - cur) as usize).min(data.len() - done);
            buf[lo..lo + n].copy_from_slice(&data[done..done + n]);
            self.write_line(line_addr, &buf);
            done += n;
        }
        Ok(())
    }
}

/// What a write miss does (paper §2.2.2 depends on write-allocate: a store
/// to an uncached watched line must first *refill* it, and that refill read
/// is what triggers the ECC check).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum WriteMissPolicy {
    /// Fetch the line into the cache, then write it (the common policy, and
    /// the one SafeMem requires).
    #[default]
    WriteAllocate,
    /// Send the store straight to memory without caching the line. Memory
    /// writes perform no ECC verification, so stores to watched lines are
    /// silently *missed* — this policy exists to demonstrate that SafeMem's
    /// correctness argument genuinely needs write-allocate.
    NoWriteAllocate,
}

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheConfig {
    /// Line size in bytes (power of two, ≥ 8). Must match across levels.
    pub line_size: u32,
    /// Number of sets (power of two).
    pub sets: u32,
    /// Associativity.
    pub ways: u32,
}

impl CacheConfig {
    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        u64::from(self.line_size) * u64::from(self.sets) * u64::from(self.ways)
    }

    fn validate(&self) {
        assert!(
            self.line_size.is_power_of_two() && self.line_size >= 8,
            "bad line size"
        );
        assert!(
            self.sets.is_power_of_two() && self.sets > 0,
            "bad set count"
        );
        assert!(self.ways > 0, "bad associativity");
    }
}

/// A typical small two-level configuration (8 KiB L1, 64 KiB L2, 64 B lines),
/// scaled down so workloads exercise misses.
#[must_use]
pub fn default_two_level() -> Vec<CacheConfig> {
    vec![
        CacheConfig {
            line_size: 64,
            sets: 32,
            ways: 4,
        },
        CacheConfig {
            line_size: 64,
            sets: 128,
            ways: 8,
        },
    ]
}

#[derive(Clone)]
struct Line {
    tag: u64,
    dirty: bool,
    lru: u64,
    data: Box<[u8]>,
}

/// Per-level counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LevelStats {
    /// Line lookups that hit in this level.
    pub hits: u64,
    /// Line lookups that missed in this level.
    pub misses: u64,
    /// Lines evicted from this level (clean or dirty).
    pub evictions: u64,
}

/// Traffic produced by one access (or accumulated across several).
///
/// The machine layer converts these counts into cycles.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Traffic {
    /// Line accesses served by each level (index 0 = L1).
    pub level_hits: Vec<u64>,
    /// Full-line reads that went to memory (refills).
    pub memory_reads: u64,
    /// Full-line writes that went to memory (writebacks + flushes).
    pub memory_writes: u64,
}

impl Traffic {
    /// An empty traffic record for a hierarchy with `levels` levels.
    #[must_use]
    pub fn new(levels: usize) -> Self {
        Traffic {
            level_hits: vec![0; levels],
            memory_reads: 0,
            memory_writes: 0,
        }
    }

    /// Zeroes all counters in place, so one record can be reused across
    /// accesses without reallocating the per-level vector.
    pub fn reset(&mut self) {
        self.level_hits.fill(0);
        self.memory_reads = 0;
        self.memory_writes = 0;
    }
}

struct CacheLevel {
    config: CacheConfig,
    sets: Vec<Vec<Line>>, // each inner Vec holds at most `ways` lines
    stats: LevelStats,
    tick: u64,
}

impl CacheLevel {
    fn new(config: CacheConfig) -> Self {
        config.validate();
        CacheLevel {
            config,
            sets: (0..config.sets).map(|_| Vec::new()).collect(),
            stats: LevelStats::default(),
            tick: 0,
        }
    }

    fn set_index(&self, line_addr: u64) -> usize {
        ((line_addr / u64::from(self.config.line_size)) % u64::from(self.config.sets)) as usize
    }

    fn lookup(&mut self, line_addr: u64) -> Option<&mut Line> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_index(line_addr);
        let line = self.sets[set].iter_mut().find(|l| l.tag == line_addr);
        if let Some(l) = line {
            l.lru = tick;
            self.stats.hits += 1;
            Some(l)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Hit fast path: refreshes the line in place instead of extracting and
    /// reinstalling it. Counter-equivalent to `lookup` + `extract` +
    /// `install` on a hit (tick advances twice, LRU takes the final tick,
    /// one hit recorded); only the line's position within its set Vec
    /// differs, which nothing observable depends on — LRU values stay
    /// unique, so eviction victims are position-independent. Returns `None`
    /// without touching any counter on a miss.
    fn touch(&mut self, line_addr: u64) -> Option<&mut Line> {
        let set = self.set_index(line_addr);
        let pos = self.sets[set].iter().position(|l| l.tag == line_addr)?;
        self.tick += 2;
        self.stats.hits += 1;
        let line = &mut self.sets[set][pos];
        line.lru = self.tick;
        Some(line)
    }

    /// Removes the line if present, returning it.
    fn extract(&mut self, line_addr: u64) -> Option<Line> {
        let set = self.set_index(line_addr);
        let pos = self.sets[set].iter().position(|l| l.tag == line_addr)?;
        Some(self.sets[set].swap_remove(pos))
    }

    /// Installs a line, returning the evicted victim if the set was full.
    fn install(&mut self, mut line: Line) -> Option<Line> {
        self.tick += 1;
        line.lru = self.tick;
        let set = self.set_index(line.tag);
        let ways = self.config.ways as usize;
        let victim = if self.sets[set].len() >= ways {
            let (pos, _) = self.sets[set]
                .iter()
                .enumerate()
                .min_by_key(|&(_, l)| l.lru)
                .expect("non-empty set");
            self.stats.evictions += 1;
            Some(self.sets[set].swap_remove(pos))
        } else {
            None
        };
        self.sets[set].push(line);
        victim
    }

    fn resident_line_addrs(&self) -> Vec<u64> {
        self.sets.iter().flatten().map(|l| l.tag).collect()
    }
}

/// A multi-level exclusive write-back cache hierarchy.
///
/// *Exclusive* means every line is resident in at most one level: hits in a
/// lower level promote the line to L1, with LRU victims cascading downward
/// and dirty bottom-level victims written back to memory. This keeps the
/// contents model simple while preserving the two behaviours SafeMem needs
/// (filtering and flush).
pub struct Hierarchy {
    levels: Vec<CacheLevel>,
    line_size: u32,
    write_miss: WriteMissPolicy,
    /// Next-line prefetch on demand misses. Prefetches of lines whose
    /// refill fails (e.g. an armed ECC watchpoint) are squashed silently,
    /// exactly as hardware prefetchers drop lines with ECC errors — so
    /// prefetching neither false-fires nor destroys watchpoints.
    prefetch_next_line: bool,
    /// Highest address (exclusive) the prefetcher may touch — the physical
    /// memory size. Demand accesses are bounds-checked by the backing;
    /// speculative ones must not run off the end.
    prefetch_limit: u64,
    prefetches_issued: u64,
    prefetches_squashed: u64,
    /// Retired line buffers kept for reuse: refills pop one instead of
    /// allocating, evictions and flushes push theirs back. Purely a host
    /// allocation optimisation — no simulated state lives here.
    spare: Vec<Box<[u8]>>,
}

impl fmt::Debug for Hierarchy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Hierarchy")
            .field("levels", &self.levels.len())
            .field("line_size", &self.line_size)
            .finish()
    }
}

impl Hierarchy {
    /// Builds a hierarchy from per-level geometries (index 0 = L1).
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty, any geometry is invalid, or line sizes
    /// differ across levels.
    #[must_use]
    pub fn new(configs: Vec<CacheConfig>) -> Self {
        Hierarchy::with_write_miss_policy(configs, WriteMissPolicy::WriteAllocate)
    }

    /// Builds a hierarchy with an explicit write-miss policy (see
    /// [`WriteMissPolicy`] for why anything but write-allocate breaks
    /// SafeMem's store detection).
    ///
    /// # Panics
    ///
    /// As for [`Hierarchy::new`].
    #[must_use]
    pub fn with_write_miss_policy(configs: Vec<CacheConfig>, write_miss: WriteMissPolicy) -> Self {
        assert!(!configs.is_empty(), "hierarchy needs at least one level");
        let line_size = configs[0].line_size;
        for c in &configs {
            c.validate();
            assert_eq!(
                c.line_size, line_size,
                "line sizes must match across levels"
            );
        }
        Hierarchy {
            levels: configs.into_iter().map(CacheLevel::new).collect(),
            line_size,
            write_miss,
            prefetch_next_line: false,
            prefetch_limit: u64::MAX,
            prefetches_issued: 0,
            prefetches_squashed: 0,
            spare: Vec::new(),
        }
    }

    /// Enables or disables the next-line prefetcher.
    pub fn set_prefetch(&mut self, on: bool) {
        self.prefetch_next_line = on;
    }

    /// Sets the exclusive address bound for speculative accesses (the
    /// physical memory size). Demand accesses are unaffected.
    pub fn set_prefetch_limit(&mut self, limit: u64) {
        self.prefetch_limit = limit;
    }

    /// (prefetches issued, prefetches squashed by failed refills).
    #[must_use]
    pub fn prefetch_stats(&self) -> (u64, u64) {
        (self.prefetches_issued, self.prefetches_squashed)
    }

    /// The write-miss policy in force.
    #[must_use]
    pub fn write_miss_policy(&self) -> WriteMissPolicy {
        self.write_miss
    }

    /// Line size in bytes.
    #[must_use]
    pub fn line_size(&self) -> u32 {
        self.line_size
    }

    /// Number of levels.
    #[must_use]
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Per-level counters.
    #[must_use]
    pub fn level_stats(&self) -> Vec<LevelStats> {
        self.levels.iter().map(|l| l.stats).collect()
    }

    /// Returns the level (0-based) currently holding the line containing
    /// `addr`, if any.
    #[must_use]
    pub fn residency(&self, addr: u64) -> Option<usize> {
        let line_addr = self.line_addr(addr);
        self.levels.iter().position(|lvl| {
            let set = lvl.set_index(line_addr);
            lvl.sets[set].iter().any(|l| l.tag == line_addr)
        })
    }

    /// The line-aligned address containing `addr`.
    #[must_use]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(u64::from(self.line_size) - 1)
    }

    /// A line-sized buffer for a refill: pooled if available, fresh
    /// otherwise. Callers overwrite the full buffer before use.
    fn take_buf(&mut self) -> Box<[u8]> {
        self.spare
            .pop()
            .unwrap_or_else(|| vec![0u8; self.line_size as usize].into_boxed_slice())
    }

    /// Returns a dead line's buffer to the pool (bounded so pathological
    /// flush storms cannot hoard memory).
    fn retire_buf(&mut self, buf: Box<[u8]>) {
        if self.spare.len() < 256 {
            self.spare.push(buf);
        }
    }

    /// Cascades a line into level `idx`, pushing victims downward; a dirty
    /// victim leaving the last level is written to memory.
    fn cascade_install<B: LineBacking + ?Sized>(
        &mut self,
        idx: usize,
        line: Line,
        backing: &mut B,
        traffic: &mut Traffic,
    ) {
        let mut carry = Some(line);
        let mut level = idx;
        while let Some(l) = carry.take() {
            if level >= self.levels.len() {
                if l.dirty {
                    backing.write_line(l.tag, &l.data);
                    traffic.memory_writes += 1;
                }
                self.retire_buf(l.data);
                break;
            }
            carry = self.levels[level].install(l);
            level += 1;
        }
    }

    /// Ensures the line containing `addr` is resident in L1, refilling from
    /// memory on a full miss. Returns a mutable reference to the L1 line.
    fn ensure_in_l1<B: LineBacking + ?Sized>(
        &mut self,
        line_addr: u64,
        backing: &mut B,
        traffic: &mut Traffic,
    ) -> Result<&mut Line, B::Error> {
        // Look for a hit at any level.
        let mut found: Option<(usize, Line)> = None;
        for idx in 0..self.levels.len() {
            if self.levels[idx].lookup(line_addr).is_some() {
                let line = self.levels[idx].extract(line_addr).expect("just found");
                found = Some((idx, line));
                break;
            }
        }
        let line = match found {
            Some((idx, line)) => {
                traffic.level_hits[idx] += 1;
                line
            }
            None => {
                // Full miss: refill from memory. A fault aborts the refill
                // and nothing is installed.
                let mut data = self.take_buf();
                if let Err(e) = backing.read_line(line_addr, &mut data) {
                    self.retire_buf(data);
                    return Err(e);
                }
                traffic.memory_reads += 1;
                Line {
                    tag: line_addr,
                    dirty: false,
                    lru: 0,
                    data,
                }
            }
        };
        // (Re)install at L1.
        if let Some(victim) = self.levels[0].install(line) {
            self.cascade_install(1, victim, backing, traffic);
        }
        let set = self.levels[0].set_index(line_addr);
        Ok(self.levels[0].sets[set]
            .iter_mut()
            .find(|l| l.tag == line_addr)
            .expect("just installed"))
    }

    /// Reads `buf.len()` bytes at `addr` through the hierarchy.
    ///
    /// # Errors
    ///
    /// Propagates the backing's error from a faulted refill; lines before the
    /// fault may already have been read.
    pub fn read<B: LineBacking + ?Sized>(
        &mut self,
        addr: u64,
        buf: &mut [u8],
        backing: &mut B,
        traffic: &mut Traffic,
    ) -> Result<(), B::Error> {
        let ls = u64::from(self.line_size);
        let end = addr + buf.len() as u64;
        let mut line_addr = self.line_addr(addr);
        while line_addr < end {
            let lo = line_addr.max(addr);
            let hi = (line_addr + ls).min(end);
            // L1 hit fast path: the overwhelmingly common case needs no
            // level scan, no extract/reinstall, and no prefetch decision.
            if let Some(line) = self.levels[0].touch(line_addr) {
                traffic.level_hits[0] += 1;
                buf[(lo - addr) as usize..(hi - addr) as usize].copy_from_slice(
                    &line.data[(lo - line_addr) as usize..(hi - line_addr) as usize],
                );
                line_addr += ls;
                continue;
            }
            let missed = self.residency(line_addr).is_none();
            let line = self.ensure_in_l1(line_addr, backing, traffic)?;
            buf[(lo - addr) as usize..(hi - addr) as usize]
                .copy_from_slice(&line.data[(lo - line_addr) as usize..(hi - line_addr) as usize]);
            if missed {
                self.maybe_prefetch(line_addr + ls, backing, traffic);
            }
            line_addr += ls;
        }
        Ok(())
    }

    /// Next-line prefetch after a demand miss. A failed refill (ECC fault)
    /// squashes the prefetch without surfacing the error — hardware drops
    /// prefetched lines with errors rather than raising interrupts, which is
    /// exactly what keeps prefetching compatible with ECC watchpoints.
    fn maybe_prefetch<B: LineBacking + ?Sized>(
        &mut self,
        line_addr: u64,
        backing: &mut B,
        traffic: &mut Traffic,
    ) {
        if !self.prefetch_next_line
            || line_addr + u64::from(self.line_size) > self.prefetch_limit
            || self.residency(line_addr).is_some()
        {
            return;
        }
        self.prefetches_issued += 1;
        let mut data = self.take_buf();
        match backing.read_line(line_addr, &mut data) {
            Ok(()) => {
                traffic.memory_reads += 1;
                let line = Line {
                    tag: line_addr,
                    dirty: false,
                    lru: 0,
                    data,
                };
                if let Some(victim) = self.levels[0].install(line) {
                    self.cascade_install(1, victim, backing, traffic);
                }
            }
            Err(_) => {
                self.prefetches_squashed += 1;
                self.retire_buf(data);
            }
        }
    }

    /// Writes `data` at `addr` through the hierarchy (write-allocate: a miss
    /// refills the line first, so writes to uncached lines do read memory —
    /// the property SafeMem relies on to catch stores to watched lines).
    ///
    /// # Errors
    ///
    /// Propagates the backing's error from a faulted refill.
    pub fn write<B: LineBacking + ?Sized>(
        &mut self,
        addr: u64,
        data: &[u8],
        backing: &mut B,
        traffic: &mut Traffic,
    ) -> Result<(), B::Error> {
        let ls = u64::from(self.line_size);
        let end = addr + data.len() as u64;
        let mut line_addr = self.line_addr(addr);
        while line_addr < end {
            let lo = line_addr.max(addr);
            let hi = (line_addr + ls).min(end);
            let chunk = &data[(lo - addr) as usize..(hi - addr) as usize];
            // L1 hit fast path (policy-independent: a hit never consults the
            // write-miss policy and never prefetches).
            if let Some(line) = self.levels[0].touch(line_addr) {
                traffic.level_hits[0] += 1;
                line.data[(lo - line_addr) as usize..(hi - line_addr) as usize]
                    .copy_from_slice(chunk);
                line.dirty = true;
                line_addr += ls;
                continue;
            }
            let cached = self.residency(line_addr).is_some();
            if cached || self.write_miss == WriteMissPolicy::WriteAllocate {
                let line = self.ensure_in_l1(line_addr, backing, traffic)?;
                line.data[(lo - line_addr) as usize..(hi - line_addr) as usize]
                    .copy_from_slice(chunk);
                line.dirty = true;
                if !cached {
                    // A write-allocate miss is a demand miss too.
                    self.maybe_prefetch(line_addr + ls, backing, traffic);
                }
            } else {
                // No-write-allocate: the store bypasses the cache. Memory
                // writes never verify ECC, so watched lines are NOT caught.
                backing.write_through(lo, chunk)?;
                traffic.memory_writes += 1;
            }
            line_addr += ls;
        }
        Ok(())
    }

    /// Flushes the line containing `addr`: writes it back to memory if dirty
    /// and invalidates it everywhere, so the next access must go to memory.
    ///
    /// This is the cache half of the `WatchMemory` implementation (paper
    /// Figure 2). Returns `true` if a writeback occurred.
    pub fn flush_line<B: LineBacking + ?Sized>(
        &mut self,
        addr: u64,
        backing: &mut B,
        traffic: &mut Traffic,
    ) -> bool {
        let line_addr = self.line_addr(addr);
        for idx in 0..self.levels.len() {
            if let Some(line) = self.levels[idx].extract(line_addr) {
                let dirty = line.dirty;
                if dirty {
                    backing.write_line(line.tag, &line.data);
                    traffic.memory_writes += 1;
                }
                self.retire_buf(line.data);
                return dirty;
            }
        }
        false
    }

    /// Flushes every line in `[addr, addr + len)`.
    ///
    /// Returns the number of dirty writebacks.
    pub fn flush_range<B: LineBacking + ?Sized>(
        &mut self,
        addr: u64,
        len: u64,
        backing: &mut B,
        traffic: &mut Traffic,
    ) -> u64 {
        let ls = u64::from(self.line_size);
        let mut writebacks = 0;
        let mut line_addr = self.line_addr(addr);
        while line_addr < addr + len {
            if self.flush_line(line_addr, backing, traffic) {
                writebacks += 1;
            }
            line_addr += ls;
        }
        writebacks
    }

    /// Writes back every dirty line and empties the hierarchy.
    pub fn flush_all<B: LineBacking + ?Sized>(&mut self, backing: &mut B, traffic: &mut Traffic) {
        let addrs: Vec<u64> = self
            .levels
            .iter()
            .flat_map(CacheLevel::resident_line_addrs)
            .collect();
        for addr in addrs {
            self.flush_line(addr, backing, traffic);
        }
    }

    /// Asserts the exclusive invariant: no line resident in two levels.
    /// Intended for tests.
    pub fn assert_exclusive(&self) {
        let mut seen = std::collections::HashSet::new();
        for level in &self.levels {
            for addr in level.resident_line_addrs() {
                assert!(seen.insert(addr), "line {addr:#x} resident in two levels");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Ram(Vec<u8>);

    impl Ram {
        fn new(size: usize) -> Self {
            Ram(vec![0; size])
        }
    }

    impl LineBacking for Ram {
        type Error = std::convert::Infallible;
        fn read_line(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), Self::Error> {
            let a = addr as usize;
            buf.copy_from_slice(&self.0[a..a + buf.len()]);
            Ok(())
        }
        fn write_line(&mut self, addr: u64, data: &[u8]) {
            let a = addr as usize;
            self.0[a..a + data.len()].copy_from_slice(data);
        }
    }

    /// A backing that fails reads of designated lines, like a watched line.
    struct FaultyRam {
        ram: Ram,
        poisoned: std::collections::HashSet<u64>,
    }

    impl LineBacking for FaultyRam {
        type Error = u64;
        fn read_line(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), Self::Error> {
            if self.poisoned.contains(&addr) {
                return Err(addr);
            }
            self.ram.read_line(addr, buf).unwrap();
            Ok(())
        }
        fn write_line(&mut self, addr: u64, data: &[u8]) {
            self.ram.write_line(addr, data);
        }
    }

    fn small() -> Hierarchy {
        Hierarchy::new(vec![
            CacheConfig {
                line_size: 64,
                sets: 2,
                ways: 2,
            },
            CacheConfig {
                line_size: 64,
                sets: 4,
                ways: 2,
            },
        ])
    }

    #[test]
    fn read_after_write_same_line() {
        let mut h = small();
        let mut ram = Ram::new(1 << 16);
        let mut t = Traffic::new(2);
        h.write(100, &[9, 8, 7], &mut ram, &mut t).unwrap();
        let mut buf = [0u8; 3];
        h.read(100, &mut buf, &mut ram, &mut t).unwrap();
        assert_eq!(buf, [9, 8, 7]);
        // Dirty data has not reached memory yet (write-back).
        assert_eq!(ram.0[100], 0);
    }

    #[test]
    fn miss_then_hit() {
        let mut h = small();
        let mut ram = Ram::new(1 << 16);
        ram.0[0..4].copy_from_slice(&[1, 2, 3, 4]);
        let mut t = Traffic::new(2);
        let mut buf = [0u8; 4];
        h.read(0, &mut buf, &mut ram, &mut t).unwrap();
        assert_eq!(t.memory_reads, 1);
        h.read(0, &mut buf, &mut ram, &mut t).unwrap();
        assert_eq!(t.memory_reads, 1, "second read must be a cache hit");
        assert_eq!(t.level_hits[0], 1);
        assert_eq!(buf, [1, 2, 3, 4]);
    }

    #[test]
    fn dirty_eviction_reaches_memory_through_cascade() {
        // L1: 2 sets x 2 ways; lines mapping to set 0 are multiples of 128.
        let mut h = small();
        let mut ram = Ram::new(1 << 16);
        let mut t = Traffic::new(2);
        // Fill set 0 of L1 and L2 beyond capacity with dirty lines:
        // 2 (L1) + 2 (L2 set) → the 5th+ dirty line forces a memory write.
        for i in 0..8u64 {
            h.write(i * 128, &[i as u8; 4], &mut ram, &mut t).unwrap();
        }
        assert!(t.memory_writes > 0, "dirty victims must reach memory");
        // All data still readable and correct.
        for i in 0..8u64 {
            let mut buf = [0u8; 4];
            h.read(i * 128, &mut buf, &mut ram, &mut t).unwrap();
            assert_eq!(buf, [i as u8; 4]);
        }
        h.assert_exclusive();
    }

    #[test]
    fn promote_on_l2_hit_is_exclusive() {
        let mut h = small();
        let mut ram = Ram::new(1 << 16);
        let mut t = Traffic::new(2);
        // Load three lines of the same L1 set: the first spills to L2.
        for i in 0..3u64 {
            let mut b = [0u8; 1];
            h.read(i * 128, &mut b, &mut ram, &mut t).unwrap();
        }
        h.assert_exclusive();
        assert_eq!(h.residency(0), Some(1), "line 0 demoted to L2");
        // Touch line 0 again: promoted back to L1, L2 hit recorded.
        let mut b = [0u8; 1];
        h.read(0, &mut b, &mut ram, &mut t).unwrap();
        assert_eq!(h.residency(0), Some(0));
        assert_eq!(t.level_hits[1], 1);
        h.assert_exclusive();
    }

    #[test]
    fn flush_line_writes_back_and_invalidates() {
        let mut h = small();
        let mut ram = Ram::new(1 << 16);
        let mut t = Traffic::new(2);
        h.write(64, &[0xAB; 8], &mut ram, &mut t).unwrap();
        assert!(
            h.flush_line(70, &mut ram, &mut t),
            "dirty line written back"
        );
        assert_eq!(&ram.0[64..72], &[0xAB; 8]);
        assert_eq!(h.residency(64), None);
        // Next read goes to memory again.
        let before = t.memory_reads;
        let mut b = [0u8; 1];
        h.read(64, &mut b, &mut ram, &mut t).unwrap();
        assert_eq!(t.memory_reads, before + 1);
    }

    #[test]
    fn flush_clean_line_is_not_a_writeback() {
        let mut h = small();
        let mut ram = Ram::new(1 << 16);
        let mut t = Traffic::new(2);
        let mut b = [0u8; 1];
        h.read(0, &mut b, &mut ram, &mut t).unwrap();
        assert!(!h.flush_line(0, &mut ram, &mut t));
        assert_eq!(h.residency(0), None);
    }

    #[test]
    fn flush_range_covers_partial_lines() {
        let mut h = small();
        let mut ram = Ram::new(1 << 16);
        let mut t = Traffic::new(2);
        h.write(60, &[1; 10], &mut ram, &mut t).unwrap(); // straddles lines 0 and 64
        let wb = h.flush_range(60, 10, &mut ram, &mut t);
        assert_eq!(wb, 2);
        assert_eq!(h.residency(0), None);
        assert_eq!(h.residency(64), None);
    }

    #[test]
    fn faulted_refill_is_not_installed() {
        let mut h = small();
        let mut ram = FaultyRam {
            ram: Ram::new(1 << 16),
            poisoned: [64u64].into_iter().collect(),
        };
        let mut t = Traffic::new(2);
        let mut b = [0u8; 1];
        assert_eq!(h.read(64, &mut b, &mut ram, &mut t), Err(64));
        assert_eq!(h.residency(64), None, "faulted line must not be cached");
        // After "unwatching" (unpoisoning), the access succeeds.
        ram.poisoned.clear();
        h.read(64, &mut b, &mut ram, &mut t).unwrap();
        assert_eq!(h.residency(64), Some(0));
    }

    #[test]
    fn write_miss_allocates_and_reads_memory() {
        let mut h = small();
        let mut ram = FaultyRam {
            ram: Ram::new(1 << 16),
            poisoned: [128u64].into_iter().collect(),
        };
        let mut t = Traffic::new(2);
        // A store to a poisoned (watched) line faults via write-allocate.
        assert_eq!(h.write(130, &[1], &mut ram, &mut t), Err(128));
    }

    #[test]
    fn flush_all_empties_hierarchy() {
        let mut h = small();
        let mut ram = Ram::new(1 << 16);
        let mut t = Traffic::new(2);
        for i in 0..6u64 {
            h.write(i * 64, &[i as u8], &mut ram, &mut t).unwrap();
        }
        h.flush_all(&mut ram, &mut t);
        for i in 0..6u64 {
            assert_eq!(h.residency(i * 64), None);
            assert_eq!(ram.0[(i * 64) as usize], i as u8);
        }
    }

    #[test]
    fn capacity_and_validation() {
        assert_eq!(
            CacheConfig {
                line_size: 64,
                sets: 32,
                ways: 4
            }
            .capacity(),
            8192
        );
    }

    #[test]
    #[should_panic(expected = "line sizes must match")]
    fn mismatched_line_sizes_rejected() {
        let _ = Hierarchy::new(vec![
            CacheConfig {
                line_size: 64,
                sets: 2,
                ways: 2,
            },
            CacheConfig {
                line_size: 32,
                sets: 2,
                ways: 2,
            },
        ]);
    }

    #[test]
    fn no_write_allocate_bypasses_cache_on_miss() {
        let mut h = Hierarchy::with_write_miss_policy(
            vec![CacheConfig {
                line_size: 64,
                sets: 2,
                ways: 2,
            }],
            WriteMissPolicy::NoWriteAllocate,
        );
        let mut ram = Ram::new(1 << 12);
        let mut t = Traffic::new(1);
        h.write(100, &[1, 2, 3], &mut ram, &mut t).unwrap();
        assert_eq!(h.residency(100), None, "miss store must not allocate");
        assert_eq!(
            &ram.0[100..103],
            &[1, 2, 3],
            "store reached memory directly"
        );
        // A store that *hits* still goes to the cache.
        let mut b = [0u8; 1];
        h.read(100, &mut b, &mut ram, &mut t).unwrap();
        h.write(100, &[9], &mut ram, &mut t).unwrap();
        assert_eq!(h.residency(100), Some(0));
        h.read(100, &mut b, &mut ram, &mut t).unwrap();
        assert_eq!(b, [9]);
    }

    #[test]
    fn no_write_allocate_misses_poisoned_lines() {
        // The demonstration behind WriteMissPolicy's docs: under
        // no-write-allocate a store to a "watched" (poisoned) line performs
        // no read, so nothing faults — SafeMem requires write-allocate.
        let mut h = Hierarchy::with_write_miss_policy(
            vec![CacheConfig {
                line_size: 64,
                sets: 2,
                ways: 2,
            }],
            WriteMissPolicy::NoWriteAllocate,
        );
        let mut ram = FaultyRam {
            ram: Ram::new(1 << 12),
            poisoned: [64u64].into_iter().collect(),
        };
        let mut t = Traffic::new(1);
        // write_through in the test backing defaults to checked RMW, which
        // would fault; the real controller's override does not. Model the
        // real behaviour: an unchecked store succeeds silently.
        struct UncheckedRam(FaultyRam);
        impl LineBacking for UncheckedRam {
            type Error = u64;
            fn read_line(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), Self::Error> {
                self.0.read_line(addr, buf)
            }
            fn write_line(&mut self, addr: u64, data: &[u8]) {
                self.0.write_line(addr, data);
            }
            fn write_through(&mut self, addr: u64, data: &[u8]) -> Result<(), Self::Error> {
                self.0.ram.write_line(addr & !63, &{
                    let mut line =
                        self.0.ram.0[(addr & !63) as usize..(addr & !63) as usize + 64].to_vec();
                    let off = (addr % 64) as usize;
                    line[off..off + data.len()].copy_from_slice(data);
                    line
                });
                Ok(())
            }
        }
        let mut unchecked = UncheckedRam(ram);
        assert!(
            h.write(70, &[0xAA], &mut unchecked, &mut t).is_ok(),
            "the store slips past the watchpoint"
        );
        // Whereas a write-allocate hierarchy faults on the same store:
        let mut h2 = Hierarchy::new(vec![CacheConfig {
            line_size: 64,
            sets: 2,
            ways: 2,
        }]);
        ram = unchecked.0;
        ram.poisoned.insert(64);
        assert_eq!(h2.write(70, &[0xAA], &mut ram, &mut t), Err(64));
    }

    #[test]
    fn prefetcher_fills_next_line_and_squashes_watched() {
        let mut h = small();
        h.set_prefetch(true);
        let mut ram = FaultyRam {
            ram: Ram::new(1 << 12),
            poisoned: [128u64].into_iter().collect(), // line 2 is "watched"
        };
        let mut t = Traffic::new(2);
        // Demand-miss line 0 → prefetch line 1 succeeds.
        let mut b = [0u8; 1];
        h.read(0, &mut b, &mut ram, &mut t).unwrap();
        assert_eq!(h.residency(64), Some(0), "next line prefetched");
        assert_eq!(h.prefetch_stats(), (1, 0));
        // Demand-miss line 1 is now a hit; touch line 1's neighbour: the
        // prefetch of poisoned line 2 must be squashed, NOT surfaced.
        h.read(64, &mut b, &mut ram, &mut t).unwrap();
        // Force a fresh demand miss adjacent to the poisoned line.
        h.flush_line(64, &mut ram, &mut t);
        h.read(64, &mut b, &mut ram, &mut t).unwrap(); // prefetches 128 → squashed
        assert_eq!(h.prefetch_stats().1, 1, "poisoned prefetch squashed");
        assert_eq!(h.residency(128), None, "watched line must not be cached");
        // The watchpoint still works: a demand access faults.
        assert_eq!(h.read(128, &mut b, &mut ram, &mut t), Err(128));
    }

    #[test]
    fn stats_accumulate() {
        let mut h = small();
        let mut ram = Ram::new(1 << 16);
        let mut t = Traffic::new(2);
        let mut b = [0u8; 1];
        h.read(0, &mut b, &mut ram, &mut t).unwrap();
        h.read(0, &mut b, &mut ram, &mut t).unwrap();
        let stats = h.level_stats();
        assert_eq!(stats[0].hits, 1);
        assert_eq!(stats[0].misses, 1);
    }
}
