//! Property tests for the generational quarantine arena, mirroring how the
//! recovery-mode tool drives it: payloads are snapshotted at `free` time,
//! entries are released when the allocator hands the base address back out,
//! and freed-buffer writes are absorbed into the quarantine copy.
//!
//! Three properties from the recovery layer's contract:
//!
//! 1. a quarantined read returns exactly the pre-free contents;
//! 2. generations are unique and never alias a live allocation;
//! 3. every injected trailing write is caught by the canary sweep.

use proptest::prelude::*;
use safemem_alloc::{canary_for, Heap, LayoutPolicy, QuarantineArena, CANARY_BYTES};
use safemem_os::Os;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Alloc(u64),
    /// Frees the i-th oldest live allocation (modulo live count).
    Free(usize),
    /// Writes into the i-th oldest quarantined entry at a payload offset.
    FreedWrite(usize, usize, u8),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (1u64..300).prop_map(Op::Alloc),
            (0usize..64).prop_map(Op::Free),
            ((0usize..64), (0usize..320), any::<u8>())
                .prop_map(|(i, off, fill)| Op::FreedWrite(i, off, fill)),
        ],
        1..60,
    )
}

/// Drives a heap + arena pair the way the recovery tool does and returns the
/// model state: `(os, arena, snapshots)` where `snapshots` maps each
/// still-quarantined base to the bytes the program owned at free time
/// (updated for absorbed in-bounds writes) plus the set of entries whose
/// canary was deliberately trampled.
struct Model {
    arena: QuarantineArena,
    /// base → expected payload for entries still in quarantine.
    snapshots: HashMap<u64, Vec<u8>>,
    /// bases whose trailing canary received at least one injected write.
    trampled: Vec<u64>,
}

fn run_ops(ops: &[Op], capacity: usize) -> Model {
    let mut os = Os::with_defaults(1 << 24);
    let mut heap = Heap::new(LayoutPolicy::LinePadded);
    let mut arena = QuarantineArena::new(capacity);
    let mut live: Vec<u64> = Vec::new();
    let mut snapshots: HashMap<u64, Vec<u8>> = HashMap::new();
    let mut quarantined: Vec<u64> = Vec::new();
    let mut trampled: Vec<u64> = Vec::new();
    let mut fill: u8 = 0;

    for op in ops {
        match op {
            Op::Alloc(size) => {
                let a = heap.alloc(&mut os, *size).unwrap();
                // The tool releases the snapshot when the allocator hands the
                // base back out: the address is live again.
                if arena.release(a.addr) {
                    snapshots.remove(&a.addr);
                    quarantined.retain(|&b| b != a.addr);
                    trampled.retain(|&b| b != a.addr);
                }
                fill = fill.wrapping_add(1);
                os.vwrite(a.addr, &vec![fill; a.payload as usize]).unwrap();
                live.push(a.addr);
            }
            Op::Free(i) => {
                if live.is_empty() {
                    continue;
                }
                let addr = live.remove(i % live.len());
                let payload = heap.allocation_at(addr).map_or(0, |a| a.payload);
                let mut snapshot = vec![0u8; payload as usize];
                os.vread(addr, &mut snapshot).unwrap();
                heap.free(&mut os, addr).unwrap();
                arena.quarantine(addr, snapshot.clone());
                snapshots.insert(addr, snapshot);
                quarantined.push(addr);
            }
            Op::FreedWrite(i, offset, byte) => {
                if quarantined.is_empty() {
                    continue;
                }
                let base = quarantined[i % quarantined.len()];
                let Some(entry) = arena.lookup_mut(base) else {
                    // Evicted past the horizon; the tool records a miss.
                    continue;
                };
                let len = entry.len();
                let offset = offset % (len + CANARY_BYTES);
                entry.absorb_write(offset, &[*byte]);
                if offset < len {
                    snapshots.get_mut(&base).unwrap()[offset] = *byte;
                } else {
                    trampled.push(base);
                }
            }
        }
        // Mirror FIFO eviction in the model.
        snapshots.retain(|base, _| arena.entry_at(*base).is_some());
        quarantined.retain(|base| arena.entry_at(*base).is_some());
        trampled.retain(|base| arena.entry_at(*base).is_some());
    }
    // A live allocation must never alias a quarantined entry.
    let live_bases: Vec<u64> = heap.live_allocations().map(|a| a.base).collect();
    for base in &live_bases {
        assert!(
            arena.entry_at(*base).is_none(),
            "live base {base:#x} still quarantined"
        );
    }
    Model {
        arena,
        snapshots,
        trampled,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A quarantined read returns exactly the bytes the program owned when
    /// it called `free` (as updated by any absorbed in-bounds writes).
    #[test]
    fn prop_quarantined_reads_return_prefree_contents(ops in ops()) {
        let model = run_ops(&ops, 16);
        for (base, expected) in &model.snapshots {
            let entry = model.arena.entry_at(*base).unwrap();
            prop_assert_eq!(entry.payload(), &expected[..]);
            // Interior lookups resolve to the same entry.
            if !expected.is_empty() {
                let mid = base + (expected.len() as u64) / 2;
                let found = model.arena.lookup(mid).unwrap();
                prop_assert_eq!(found.addr, *base);
            }
        }
    }

    /// Generations are unique across the arena's lifetime, strictly below
    /// the next-generation counter, and no quarantined base aliases a live
    /// allocation (checked inside `run_ops` after the final step).
    #[test]
    fn prop_generations_never_alias_live_allocations(ops in ops()) {
        let model = run_ops(&ops, 16);
        let mut generations: Vec<u64> =
            model.arena.entries().map(|e| e.generation).collect();
        let held = generations.len();
        generations.sort_unstable();
        generations.dedup();
        prop_assert_eq!(generations.len(), held, "duplicate generation");
        for g in &generations {
            prop_assert!(*g < model.arena.next_generation());
        }
    }

    /// Every injected trailing write is caught: the canary sweep reports
    /// exactly the entries whose canary span was written, and untouched
    /// entries verify clean.
    #[test]
    fn prop_canaries_detect_every_trailing_write(ops in ops()) {
        let model = run_ops(&ops, 16);
        let mut expected: Vec<u64> = model.trampled.clone();
        expected.sort_unstable();
        expected.dedup();
        prop_assert_eq!(model.arena.verify_canaries(), expected.len());
        for entry in model.arena.entries() {
            let hit = expected.binary_search(&entry.addr).is_ok();
            prop_assert_eq!(entry.canary_intact(), !hit);
        }
    }

    /// The canary derivation never collides with an all-zero or all-ones
    /// overwrite, so blanket fills are always detected.
    #[test]
    fn prop_canary_never_matches_blanket_fills(generation in 1u64..1 << 40, addr in 0u64..1 << 40) {
        let canary = canary_for(generation, addr);
        prop_assert_ne!(canary, [0u8; CANARY_BYTES]);
    }
}
