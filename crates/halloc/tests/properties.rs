//! Property tests for the heap allocator: non-overlap, alignment, reuse
//! discipline, and content preservation under random workloads.

use proptest::prelude::*;
use safemem_alloc::{Heap, LayoutPolicy};
use safemem_os::{Os, PAGE_BYTES};
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Alloc(u64),
    /// Frees the i-th oldest live allocation (modulo live count).
    Free(usize),
    /// Reallocates the i-th oldest live allocation to a new size.
    Realloc(usize, u64),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (1u64..600).prop_map(Op::Alloc),
            (0usize..64).prop_map(Op::Free),
            ((0usize..64), 1u64..600).prop_map(|(i, s)| Op::Realloc(i, s)),
        ],
        1..60,
    )
}

fn policies() -> impl Strategy<Value = LayoutPolicy> {
    prop_oneof![
        Just(LayoutPolicy::Natural),
        Just(LayoutPolicy::LineAligned),
        Just(LayoutPolicy::LinePadded),
        Just(LayoutPolicy::PageGuard),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under any op sequence and policy: live footprints never overlap,
    /// alignment invariants hold, and each buffer's contents survive.
    #[test]
    fn prop_allocator_integrity(ops in ops(), policy in policies()) {
        let mut os = Os::with_defaults(1 << 24);
        let mut heap = Heap::new(policy);
        let mut order: Vec<u64> = Vec::new();
        let mut contents: HashMap<u64, Vec<u8>> = HashMap::new();
        let mut fill: u8 = 0;

        for op in ops {
            match op {
                Op::Alloc(size) => {
                    let a = heap.alloc(&mut os, size).unwrap();
                    // Alignment per policy.
                    match policy {
                        LayoutPolicy::Natural => prop_assert_eq!(a.addr % 16, 0),
                        LayoutPolicy::LineAligned | LayoutPolicy::LinePadded => {
                            prop_assert_eq!(a.addr % 64, 0);
                        }
                        LayoutPolicy::PageGuard => prop_assert_eq!(a.addr % PAGE_BYTES, 0),
                    }
                    fill = fill.wrapping_add(1);
                    let data = vec![fill; size.max(1) as usize];
                    os.vwrite(a.addr, &data).unwrap();
                    contents.insert(a.addr, data);
                    order.push(a.addr);
                }
                Op::Free(i) => {
                    if order.is_empty() { continue; }
                    let addr = order.remove(i % order.len());
                    heap.free(&mut os, addr).unwrap();
                    contents.remove(&addr);
                }
                Op::Realloc(i, new_size) => {
                    if order.is_empty() { continue; }
                    let idx = i % order.len();
                    let addr = order[idx];
                    let old = contents.remove(&addr).unwrap();
                    let (_, new) = heap.realloc(&mut os, addr, new_size).unwrap();
                    let keep = old.len().min(new_size.max(1) as usize);
                    let mut data = vec![0u8; new.payload as usize];
                    os.vread(new.addr, &mut data).unwrap();
                    prop_assert_eq!(&data[..keep], &old[..keep], "realloc must preserve prefix");
                    // Refill fully so later checks are simple.
                    fill = fill.wrapping_add(1);
                    let refreshed = vec![fill; new.payload as usize];
                    os.vwrite(new.addr, &refreshed).unwrap();
                    contents.insert(new.addr, refreshed);
                    order[idx] = new.addr;
                }
            }

            // No two live placements overlap.
            let mut spans: Vec<(u64, u64)> = heap
                .live_allocations()
                .map(|a| (a.base, a.base + a.stride))
                .collect();
            spans.sort_unstable();
            for w in spans.windows(2) {
                prop_assert!(w[0].1 <= w[1].0, "placements overlap: {:?}", w);
            }
        }

        // Every live buffer still holds exactly what was written.
        for (addr, expected) in &contents {
            let mut buf = vec![0u8; expected.len()];
            os.vread(*addr, &mut buf).unwrap();
            prop_assert_eq!(&buf, expected);
        }

        // Stats are internally consistent.
        let stats = heap.stats();
        let live_payload: u64 = heap.live_allocations().map(|a| a.payload).sum();
        prop_assert_eq!(stats.live_payload, live_payload);
        prop_assert_eq!(stats.allocs - stats.frees, heap.live_count() as u64);
    }
}
