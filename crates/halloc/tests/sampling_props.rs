//! Property tests for sampled instrumentation at the allocator boundary.
//!
//! Three invariants, over arbitrary allocation/free/access schedules:
//!
//! 1. **Unsampled allocations are free.** An allocation the sampling plan
//!    skips carries no guard pads, arms no watched region, and charges the
//!    simulated CPU exactly what an uninstrumented heap charges.
//! 2. **Sampled allocations are the real thing.** At rate 1.0 the sampled
//!    tool is byte-for-byte the always-on tool: same reports, same heap
//!    stats, same cycle count.
//! 3. **Mixed populations never cross.** With both populations live in one
//!    heap, legitimate traffic — including frees and reallocs that recycle
//!    the other population's blocks — never produces a report.
//!
//! Lives in the allocator crate because the hazard under test is allocator
//! placement: sampled (padded) and unsampled (line-aligned) blocks share the
//! address space, and a free-list collision between the two is exactly the
//! kind of bug these properties would catch. `safemem-core` is a
//! dev-dependency only (cargo permits the cycle for tests).

use proptest::prelude::*;
use safemem_alloc::{Heap, LayoutPolicy};
use safemem_core::{CallStack, MemTool, SafeMem, SamplingPlan, PPM};
use safemem_os::Os;

fn os() -> Os {
    Os::with_defaults(1 << 23)
}

fn stack(site: u64) -> CallStack {
    CallStack::new(&[0x1000 + site, 0x2000 + site])
}

/// A legitimate heap schedule: sizes to allocate, and for each step whether
/// to free the oldest live block first and whether to write the new block.
#[derive(Debug, Clone)]
struct Schedule {
    sizes: Vec<u64>,
    free_first: Vec<bool>,
    write: Vec<bool>,
}

fn schedule(max_len: usize) -> impl Strategy<Value = Schedule> {
    proptest::collection::vec((1u64..512, any::<bool>(), any::<bool>()), 1..max_len).prop_map(
        |steps| {
            let (mut sizes, mut free_first, mut write) = (Vec::new(), Vec::new(), Vec::new());
            for (size, f, w) in steps {
                sizes.push(size);
                free_first.push(f);
                write.push(w);
            }
            Schedule {
                sizes,
                free_first,
                write,
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rate 0: every allocation is unsampled — no pads, no watched regions,
    /// and the cycle meter advances exactly as it does for a bare
    /// line-aligned heap running the same schedule.
    #[test]
    fn prop_unsampled_allocations_cost_nothing(
        sched in schedule(24),
        seed in any::<u64>(),
    ) {
        let mut os_tool = os();
        let mut tool = SafeMem::builder()
            .leak_detection(false)
            .sampling(SamplingPlan::new(0, seed))
            .build(&mut os_tool);
        let mut os_heap = os();
        let mut heap = Heap::new(LayoutPolicy::LineAligned);

        let mut live_tool: Vec<u64> = Vec::new();
        let mut live_heap: Vec<u64> = Vec::new();
        for (i, &size) in sched.sizes.iter().enumerate() {
            if sched.free_first[i] && !live_tool.is_empty() {
                tool.free(&mut os_tool, live_tool.remove(0));
                heap.free(&mut os_heap, live_heap.remove(0)).expect("live");
            }
            let watched = os_tool.watched_region_count();
            let a = tool.malloc(&mut os_tool, size, &stack(i as u64));
            let bare = heap.alloc(&mut os_heap, size).expect("fits");
            prop_assert_eq!(a, bare.addr, "unsampled placement matches the bare heap");
            let alloc = *tool.heap().allocation_at(a).expect("live");
            prop_assert_eq!(alloc.pad_before(), 0, "no guard pad before");
            // LineAligned rounds the payload up to the line, so pad_after is
            // alignment waste, not a guard — identical to the bare heap's.
            prop_assert_eq!(alloc.pad_after(), bare.pad_after());
            prop_assert_eq!(os_tool.watched_region_count(), watched, "nothing armed");
            live_tool.push(a);
            live_heap.push(bare.addr);
        }
        prop_assert_eq!(os_tool.cpu_cycles(), os_heap.cpu_cycles(),
            "unsampled instrumentation must charge zero extra cycles");
        prop_assert!(tool.all_reports().is_empty());
        let summary = tool.sampling().expect("safemem reports sampling");
        prop_assert_eq!(summary.sampled_allocs, 0);
        prop_assert_eq!(summary.total_allocs, sched.sizes.len() as u64);
    }

    /// Rate 1.0 is always-on SafeMem, bit for bit: reports, heap statistics,
    /// and the cycle meter all agree with the default builder on the same
    /// schedule (which includes an out-of-bounds write when the schedule
    /// says to, so detection paths are compared too).
    #[test]
    fn prop_full_rate_sampling_is_always_on(
        sched in schedule(24),
        seed in any::<u64>(),
    ) {
        let mut os_a = os();
        let mut plain = SafeMem::builder().build(&mut os_a);
        let mut os_b = os();
        let mut full = SafeMem::builder()
            .sampling(SamplingPlan::new(PPM, seed))
            .build(&mut os_b);

        for (tool, os) in [(&mut plain, &mut os_a), (&mut full, &mut os_b)] {
            let mut live: Vec<(u64, u64)> = Vec::new();
            for (i, &size) in sched.sizes.iter().enumerate() {
                if sched.free_first[i] && !live.is_empty() {
                    let (addr, _) = live.remove(0);
                    tool.free(os, addr);
                }
                let a = tool.malloc(os, size, &stack(i as u64));
                if sched.write[i] {
                    // One byte past the payload: lands in the guard pad.
                    tool.write(os, a + size, &[0xEE]);
                }
                live.push((a, size));
            }
            for (addr, _) in live {
                tool.free(os, addr);
            }
            tool.finish(os);
        }
        prop_assert_eq!(plain.all_reports(), full.all_reports());
        prop_assert_eq!(plain.heap().stats(), full.heap().stats());
        prop_assert_eq!(os_a.cpu_cycles(), os_b.cpu_cycles());
        let summary = full.sampling().expect("safemem reports sampling");
        prop_assert_eq!(summary.sampled_allocs, summary.total_allocs);
    }

    /// Any rate, any seed: a mixed sampled/unsampled population running only
    /// legitimate traffic — in-bounds writes, frees, reallocs that recycle
    /// blocks across the population boundary — never yields a report, and
    /// the heap stays structurally intact.
    #[test]
    fn prop_mixed_population_legit_traffic_is_silent(
        sched in schedule(24),
        rate_ppm in 0u32..PPM + 1,
        seed in any::<u64>(),
    ) {
        let mut os = os();
        let mut tool = SafeMem::builder()
            .recovery(true)
            .sampling(SamplingPlan::new(rate_ppm, seed))
            .build(&mut os);

        let mut live: Vec<(u64, u64)> = Vec::new();
        for (i, &size) in sched.sizes.iter().enumerate() {
            if sched.free_first[i] && !live.is_empty() {
                let (addr, _) = live.remove(0);
                tool.free(&mut os, addr);
            }
            let a = tool.malloc(&mut os, size, &stack(i as u64));
            tool.write(&mut os, a, &vec![0x5A; size.min(8) as usize]);
            live.push((a, size));
            // Realloc an older survivor: grows may move it into space a
            // differently-instrumented neighbour just vacated.
            if sched.write[i] && live.len() > 1 {
                let (addr, old) = live.remove(0);
                let grown = tool.realloc(&mut os, addr, old + 64, &stack(900 + i as u64));
                live.push((grown, old + 64));
            }
        }
        for (addr, _) in live {
            tool.free(&mut os, addr);
        }
        tool.finish(&mut os);

        let reports = tool.all_reports();
        prop_assert!(
            reports.iter().all(|r| !r.is_corruption()),
            "legitimate mixed-population traffic misreported: {reports:?}"
        );
        prop_assert!(tool.heap().verify_integrity(), "heap intact");
    }
}
