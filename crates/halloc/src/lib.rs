//! Heap allocator over the simulated virtual address space.
//!
//! Plays the role of the C library allocator the paper's tools interpose on.
//! The allocator manages addresses and statistics only — bytes live in the
//! simulated machine, and policy such as guarding/watching belongs to the
//! tools. Four [`LayoutPolicy`] values cover every configuration the paper
//! evaluates:
//!
//! * [`Natural`](LayoutPolicy::Natural) — 16-byte alignment, no padding: the
//!   uninstrumented baseline.
//! * [`LineAligned`](LayoutPolicy::LineAligned) — cache-line-aligned and
//!   line-rounded buffers (avoids false sharing of watched lines).
//! * [`LinePadded`](LayoutPolicy::LinePadded) — line-aligned with one guard
//!   line on each end: SafeMem's corruption-detection layout (§4).
//! * [`PageGuard`](LayoutPolicy::PageGuard) — page-aligned with one guard
//!   page on each end: the page-protection baseline of Table 4.
//!
//! The per-policy waste accounting (`stride - payload`) is exactly what
//! Table 4's space-overhead comparison reports.
//!
//! # Example
//!
//! ```
//! use safemem_alloc::{Heap, LayoutPolicy};
//! use safemem_os::Os;
//!
//! let mut os = Os::with_defaults(1 << 22);
//! let mut heap = Heap::new(LayoutPolicy::LinePadded);
//! let a = heap.alloc(&mut os, 100).unwrap();
//! assert_eq!(a.addr % 64, 0, "line aligned");
//! assert_eq!(a.pad_before(), 64);
//! os.vwrite(a.addr, &[1u8; 100]).unwrap();
//! heap.free(&mut os, a.addr).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod quarantine;

pub use quarantine::{canary_for, QuarantineArena, QuarantineEntry, CANARY_BYTES};

use safemem_hashfx::FxHashMap;
use safemem_os::{Os, HEAP_BASE, PAGE_BYTES};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Cache line size assumed by the line-based layouts. Matches the default
/// machine configuration; the granularity ablation constructs heaps with an
/// explicit [`Heap::with_line_size`].
pub const LINE_BYTES: u64 = 64;

/// How the allocator places buffers in the address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum LayoutPolicy {
    /// 16-byte alignment, size rounded to 16: the uninstrumented baseline.
    Natural,
    /// Cache-line alignment, size rounded to a whole number of lines.
    LineAligned,
    /// Line alignment plus one watched guard line before and after the
    /// buffer (SafeMem memory-corruption layout, paper §4).
    LinePadded,
    /// Page alignment plus one guard page before and after the buffer
    /// (Electric-Fence-style page-protection baseline, Table 4).
    PageGuard,
}

/// A live allocation as placed by the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Allocation {
    /// Address of the payload (what `malloc` returns).
    pub addr: u64,
    /// Requested payload size in bytes.
    pub payload: u64,
    /// Start of the whole placement, including any front padding.
    pub base: u64,
    /// Total footprint in bytes, including padding and rounding.
    pub stride: u64,
    /// `true` if this placement reuses a previously freed block.
    pub reused: bool,
}

impl Allocation {
    /// Bytes of guard/padding before the payload.
    #[must_use]
    pub fn pad_before(&self) -> u64 {
        self.addr - self.base
    }

    /// Bytes of guard/padding + rounding after the payload.
    #[must_use]
    pub fn pad_after(&self) -> u64 {
        self.base + self.stride - (self.addr + self.payload)
    }

    /// Total wasted bytes (everything that is not payload).
    #[must_use]
    pub fn waste(&self) -> u64 {
        self.stride - self.payload
    }
}

/// Allocator errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AllocError {
    /// The heap region is exhausted.
    OutOfHeap,
    /// `free`/`realloc` of an address that is not a live payload address
    /// (wild or double free).
    NotAllocated {
        /// The offending address.
        addr: u64,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfHeap => write!(f, "heap region exhausted"),
            AllocError::NotAllocated { addr } => {
                write!(f, "free of non-allocated address {addr:#x}")
            }
        }
    }
}

impl Error for AllocError {}

/// Cumulative allocator statistics (drives Table 4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HeapStats {
    /// Currently live payload bytes.
    pub live_payload: u64,
    /// Currently live footprint bytes (payload + waste).
    pub live_footprint: u64,
    /// Peak live payload bytes.
    pub peak_payload: u64,
    /// Peak live footprint bytes.
    pub peak_footprint: u64,
    /// Total allocations served.
    pub allocs: u64,
    /// Total frees served.
    pub frees: u64,
    /// Sum of payload bytes over all allocations ever made.
    pub cumulative_payload: u64,
    /// Sum of wasted bytes over all allocations ever made.
    pub cumulative_waste: u64,
}

impl HeapStats {
    /// Space overhead as a percentage of actual memory usage over the whole
    /// execution (Table 4's metric): wasted bytes per payload byte.
    #[must_use]
    pub fn overhead_percent(&self) -> f64 {
        if self.cumulative_payload == 0 {
            0.0
        } else {
            self.cumulative_waste as f64 / self.cumulative_payload as f64 * 100.0
        }
    }
}

/// The heap allocator.
///
/// Metadata lives host-side (the simulated bytes are entirely the
/// application's); placements come from exact-footprint free lists with a
/// bump-pointer wilderness behind them.
#[derive(Debug)]
pub struct Heap {
    policy: LayoutPolicy,
    line_bytes: u64,
    pad_lines: u64,
    limit: u64,
    bump: u64,
    /// Payload address → allocation record.
    live: BTreeMap<u64, Allocation>,
    /// (footprint, payload offset) → freed placement bases available for
    /// reuse. Keying on the offset as well as the stride keeps placements
    /// from different layout policies (e.g. padded vs unpadded blocks of
    /// equal footprint in a sampling heap) from aliasing each other's
    /// payload addresses; with a single policy the offset is constant per
    /// stride, so behaviour is unchanged.
    free_lists: FxHashMap<(u64, u64), Vec<u64>>,
    stats: HeapStats,
}

impl Heap {
    /// Creates a heap with the given layout policy over the conventional
    /// heap region.
    #[must_use]
    pub fn new(policy: LayoutPolicy) -> Self {
        Heap::with_line_size(policy, LINE_BYTES)
    }

    /// Creates a heap whose line-based layouts use `line_bytes` (for the
    /// watch-granularity ablation).
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two ≥ 8.
    #[must_use]
    pub fn with_line_size(policy: LayoutPolicy, line_bytes: u64) -> Self {
        Heap::with_options(policy, line_bytes, 1)
    }

    /// Creates a heap with full control: line size and the number of guard
    /// lines per side in the [`LinePadded`](LayoutPolicy::LinePadded)
    /// layout (the padding-width ablation; the paper uses 1 and notes
    /// longer paddings are possible, §4).
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two ≥ 8 or `pad_lines` is 0.
    #[must_use]
    pub fn with_options(policy: LayoutPolicy, line_bytes: u64, pad_lines: u64) -> Self {
        assert!(
            line_bytes.is_power_of_two() && line_bytes >= 8,
            "bad line size"
        );
        assert!(pad_lines > 0, "at least one pad line");
        Heap {
            policy,
            line_bytes,
            pad_lines,
            limit: HEAP_BASE + (1 << 28), // 256 MiB of address space
            bump: HEAP_BASE,
            live: BTreeMap::new(),
            free_lists: FxHashMap::default(),
            stats: HeapStats::default(),
        }
    }

    /// The layout policy in force.
    #[must_use]
    pub fn policy(&self) -> LayoutPolicy {
        self.policy
    }

    /// Current statistics.
    #[must_use]
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// Number of live allocations.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Iterates over live allocations in address order (Purify's
    /// mark-and-sweep scans this).
    pub fn live_allocations(&self) -> impl Iterator<Item = &Allocation> {
        self.live.values()
    }

    /// Post-run integrity walk: every live placement must be well formed
    /// (payload inside its stride) and no two placements may overlap. A
    /// healthy heap always passes; recovery-mode tools run this after a
    /// survived corruption to back their "heap intact" claim.
    #[must_use]
    pub fn verify_integrity(&self) -> bool {
        let mut prev_end = 0u64;
        for a in self.live.values() {
            let well_formed =
                a.addr >= a.base && a.addr - a.base + a.payload <= a.stride && a.base >= HEAP_BASE;
            // `live` is keyed by payload address, so iteration is in
            // address order; disjoint placements keep base order identical
            // to address order (even with mixed per-allocation layouts),
            // making the pairwise overlap check complete.
            if !well_formed || a.base < prev_end {
                return false;
            }
            prev_end = a.base + a.stride;
        }
        true
    }

    /// The live allocation whose payload contains `addr`, if any.
    #[must_use]
    pub fn allocation_containing(&self, addr: u64) -> Option<&Allocation> {
        self.live
            .range(..=addr)
            .next_back()
            .map(|(_, a)| a)
            .filter(|a| addr < a.addr + a.payload)
    }

    /// The live allocation starting exactly at payload address `addr`.
    #[must_use]
    pub fn allocation_at(&self, addr: u64) -> Option<&Allocation> {
        self.live.get(&addr)
    }

    fn round_up(value: u64, to: u64) -> u64 {
        value.div_ceil(to) * to
    }

    /// Footprint and payload offset for a request under `policy`.
    fn placement(&self, policy: LayoutPolicy, size: u64) -> (u64, u64) {
        let size = size.max(1);
        match policy {
            LayoutPolicy::Natural => (Self::round_up(size, 16), 0),
            LayoutPolicy::LineAligned => (Self::round_up(size, self.line_bytes), 0),
            LayoutPolicy::LinePadded => (
                Self::round_up(size, self.line_bytes) + 2 * self.pad_lines * self.line_bytes,
                self.pad_lines * self.line_bytes,
            ),
            LayoutPolicy::PageGuard => (
                Self::round_up(size, PAGE_BYTES) + 2 * PAGE_BYTES,
                PAGE_BYTES,
            ),
        }
    }

    /// Allocates `size` bytes (`malloc`).
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::OutOfHeap`] when the address space is gone.
    pub fn alloc(&mut self, os: &mut Os, size: u64) -> Result<Allocation, AllocError> {
        self.alloc_with_policy(os, size, self.policy)
    }

    /// Allocates `size` bytes under an explicit layout policy, overriding
    /// the heap-wide default for this placement only. This is how a
    /// sampling tool mixes guarded ([`LinePadded`](LayoutPolicy::LinePadded))
    /// and unguarded ([`LineAligned`](LayoutPolicy::LineAligned)) buffers in
    /// one heap; the `(stride, offset)` free-list keying keeps the two
    /// populations from reusing each other's placements.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::OutOfHeap`] when the address space is gone.
    pub fn alloc_with_policy(
        &mut self,
        os: &mut Os,
        size: u64,
        policy: LayoutPolicy,
    ) -> Result<Allocation, AllocError> {
        os.compute(os.machine().cost().allocator_op_cycles);
        let (stride, offset) = self.placement(policy, size);
        let (base, reused) = match self
            .free_lists
            .get_mut(&(stride, offset))
            .and_then(Vec::pop)
        {
            Some(base) => (base, true),
            None => {
                let base = Self::round_up(self.bump, stride.clamp(16, PAGE_BYTES));
                if base + stride > self.limit {
                    return Err(AllocError::OutOfHeap);
                }
                self.bump = base + stride;
                (base, false)
            }
        };
        let allocation = Allocation {
            addr: base + offset,
            payload: size.max(1),
            base,
            stride,
            reused,
        };
        self.live.insert(allocation.addr, allocation);
        self.stats.allocs += 1;
        self.stats.live_payload += allocation.payload;
        self.stats.live_footprint += allocation.stride;
        self.stats.cumulative_payload += allocation.payload;
        self.stats.cumulative_waste += allocation.waste();
        self.stats.peak_payload = self.stats.peak_payload.max(self.stats.live_payload);
        self.stats.peak_footprint = self.stats.peak_footprint.max(self.stats.live_footprint);
        Ok(allocation)
    }

    /// Allocates zero-initialised memory (`calloc`).
    ///
    /// # Errors
    ///
    /// As for [`Heap::alloc`]. Zeroing a reused block writes through the
    /// simulated memory (fresh pages are already demand-zeroed).
    pub fn calloc(&mut self, os: &mut Os, size: u64) -> Result<Allocation, AllocError> {
        let allocation = self.alloc(os, size)?;
        if allocation.reused {
            let zeros = vec![0u8; allocation.payload as usize];
            os.vwrite(allocation.addr, &zeros)
                .expect("calloc zeroing of fresh allocation cannot fault");
        }
        Ok(allocation)
    }

    /// Frees the allocation at payload address `addr`, returning its record.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::NotAllocated`] for wild or double frees.
    pub fn free(&mut self, os: &mut Os, addr: u64) -> Result<Allocation, AllocError> {
        os.compute(os.machine().cost().allocator_op_cycles);
        let allocation = self
            .live
            .remove(&addr)
            .ok_or(AllocError::NotAllocated { addr })?;
        self.free_lists
            .entry((allocation.stride, allocation.pad_before()))
            .or_default()
            .push(allocation.base);
        self.stats.frees += 1;
        self.stats.live_payload -= allocation.payload;
        self.stats.live_footprint -= allocation.stride;
        Ok(allocation)
    }

    /// Address-space accounting: bytes handed out by the bump pointer,
    /// bytes parked on free lists awaiting reuse, and external fragmentation
    /// as a fraction (free-list bytes over bump extent).
    #[must_use]
    pub fn address_space(&self) -> (u64, u64, f64) {
        let extent = self.bump - HEAP_BASE;
        let parked: u64 = self
            .free_lists
            .iter()
            .map(|((stride, _offset), bases)| stride * bases.len() as u64)
            .sum();
        let frag = if extent == 0 {
            0.0
        } else {
            parked as f64 / extent as f64
        };
        (extent, parked, frag)
    }

    /// Resizes an allocation (`realloc`): places a new block, copies the
    /// overlapping prefix through simulated memory, frees the old block.
    /// Returns `(old_record, new_record)`.
    ///
    /// # Errors
    ///
    /// [`AllocError::NotAllocated`] if `addr` is not live, or
    /// [`AllocError::OutOfHeap`].
    pub fn realloc(
        &mut self,
        os: &mut Os,
        addr: u64,
        new_size: u64,
    ) -> Result<(Allocation, Allocation), AllocError> {
        let old = *self
            .live
            .get(&addr)
            .ok_or(AllocError::NotAllocated { addr })?;
        let new = self.alloc(os, new_size)?;
        let copy = old.payload.min(new.payload) as usize;
        let mut data = vec![0u8; copy];
        os.vread(old.addr, &mut data)
            .expect("realloc source readable");
        os.vwrite(new.addr, &data)
            .expect("realloc destination writable");
        self.free(os, addr).expect("old block is live");
        Ok((old, new))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn os() -> Os {
        Os::with_defaults(1 << 22)
    }

    #[test]
    fn natural_layout_alignment_and_waste() {
        let mut os = os();
        let mut h = Heap::new(LayoutPolicy::Natural);
        let a = h.alloc(&mut os, 20).unwrap();
        assert_eq!(a.addr % 16, 0);
        assert_eq!(a.stride, 32);
        assert_eq!(a.waste(), 12);
    }

    #[test]
    fn line_padded_layout_places_guard_lines() {
        let mut os = os();
        let mut h = Heap::new(LayoutPolicy::LinePadded);
        let a = h.alloc(&mut os, 100).unwrap();
        assert_eq!(a.addr % 64, 0);
        assert_eq!(a.pad_before(), 64);
        assert_eq!(a.pad_after(), 64 + (128 - 100));
        assert_eq!(a.stride, 128 + 128);
    }

    #[test]
    fn page_guard_layout_places_guard_pages() {
        let mut os = os();
        let mut h = Heap::new(LayoutPolicy::PageGuard);
        let a = h.alloc(&mut os, 100).unwrap();
        assert_eq!(a.addr % PAGE_BYTES, 0);
        assert_eq!(a.pad_before(), PAGE_BYTES);
        assert_eq!(a.stride, 3 * PAGE_BYTES);
    }

    #[test]
    fn page_guard_wastes_far_more_than_line_padded() {
        // The essence of Table 4.
        let mut os = os();
        let mut ecc = Heap::new(LayoutPolicy::LinePadded);
        let mut page = Heap::new(LayoutPolicy::PageGuard);
        for size in [24u64, 100, 512, 900] {
            ecc.alloc(&mut os, size).unwrap();
            page.alloc(&mut os, size).unwrap();
        }
        let ratio = page.stats().overhead_percent() / ecc.stats().overhead_percent();
        assert!(
            ratio > 20.0,
            "page/ECC waste ratio {ratio} unexpectedly small"
        );
    }

    #[test]
    fn allocations_never_overlap() {
        let mut os = os();
        for policy in [
            LayoutPolicy::Natural,
            LayoutPolicy::LineAligned,
            LayoutPolicy::LinePadded,
            LayoutPolicy::PageGuard,
        ] {
            let mut h = Heap::new(policy);
            let mut spans: Vec<(u64, u64)> = Vec::new();
            for i in 1..40u64 {
                let a = h.alloc(&mut os, i * 7 % 300 + 1).unwrap();
                for &(b, e) in &spans {
                    assert!(
                        a.base >= e || a.base + a.stride <= b,
                        "overlap under {policy:?}"
                    );
                }
                spans.push((a.base, a.base + a.stride));
            }
        }
    }

    #[test]
    fn free_then_alloc_reuses_block() {
        let mut os = os();
        let mut h = Heap::new(LayoutPolicy::LineAligned);
        let a = h.alloc(&mut os, 64).unwrap();
        h.free(&mut os, a.addr).unwrap();
        let b = h.alloc(&mut os, 64).unwrap();
        assert_eq!(b.base, a.base);
        assert!(b.reused);
    }

    #[test]
    fn double_free_detected() {
        let mut os = os();
        let mut h = Heap::new(LayoutPolicy::Natural);
        let a = h.alloc(&mut os, 8).unwrap();
        h.free(&mut os, a.addr).unwrap();
        assert_eq!(
            h.free(&mut os, a.addr),
            Err(AllocError::NotAllocated { addr: a.addr })
        );
    }

    #[test]
    fn calloc_zeroes_reused_blocks() {
        let mut os = os();
        let mut h = Heap::new(LayoutPolicy::Natural);
        let a = h.alloc(&mut os, 32).unwrap();
        os.vwrite(a.addr, &[0xEE; 32]).unwrap();
        h.free(&mut os, a.addr).unwrap();
        let b = h.calloc(&mut os, 32).unwrap();
        assert_eq!(b.addr, a.addr);
        let mut buf = [0u8; 32];
        os.vread(b.addr, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 32]);
    }

    #[test]
    fn realloc_preserves_prefix() {
        let mut os = os();
        let mut h = Heap::new(LayoutPolicy::Natural);
        let a = h.alloc(&mut os, 16).unwrap();
        os.vwrite(a.addr, &[9u8; 16]).unwrap();
        let (_, b) = h.realloc(&mut os, a.addr, 64).unwrap();
        let mut buf = [0u8; 16];
        os.vread(b.addr, &mut buf).unwrap();
        assert_eq!(buf, [9u8; 16]);
        assert!(h.allocation_at(a.addr).is_none() || a.addr == b.addr);
    }

    #[test]
    fn containing_lookup() {
        let mut os = os();
        let mut h = Heap::new(LayoutPolicy::LineAligned);
        let a = h.alloc(&mut os, 100).unwrap();
        assert_eq!(h.allocation_containing(a.addr + 50).unwrap().addr, a.addr);
        assert!(
            h.allocation_containing(a.addr + 100).is_none(),
            "end is exclusive"
        );
        assert!(h.allocation_containing(a.addr.wrapping_sub(1)).is_none());
    }

    #[test]
    fn stats_track_live_and_cumulative() {
        let mut os = os();
        let mut h = Heap::new(LayoutPolicy::LinePadded);
        let a = h.alloc(&mut os, 64).unwrap();
        let b = h.alloc(&mut os, 64).unwrap();
        assert_eq!(h.stats().live_payload, 128);
        assert_eq!(h.stats().allocs, 2);
        h.free(&mut os, a.addr).unwrap();
        assert_eq!(h.stats().live_payload, 64);
        assert_eq!(h.stats().cumulative_payload, 128);
        h.free(&mut os, b.addr).unwrap();
        assert_eq!(h.stats().live_payload, 0);
        assert_eq!(h.stats().peak_payload, 128);
        // Waste for 64-byte payload in LinePadded = two pad lines.
        assert_eq!(h.stats().cumulative_waste, 2 * 128);
        assert!((h.stats().overhead_percent() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn zero_size_allocation_is_valid_and_unique() {
        let mut os = os();
        let mut h = Heap::new(LayoutPolicy::Natural);
        let a = h.alloc(&mut os, 0).unwrap();
        let b = h.alloc(&mut os, 0).unwrap();
        assert_ne!(a.addr, b.addr);
    }

    #[test]
    fn address_space_accounting() {
        let mut os = os();
        let mut h = Heap::new(LayoutPolicy::LineAligned);
        assert_eq!(h.address_space(), (0, 0, 0.0));
        let a = h.alloc(&mut os, 64).unwrap();
        let b = h.alloc(&mut os, 64).unwrap();
        let (extent, parked, _) = h.address_space();
        assert_eq!(extent, 128);
        assert_eq!(parked, 0);
        h.free(&mut os, a.addr).unwrap();
        let (_, parked, frag) = h.address_space();
        assert_eq!(parked, 64);
        assert!((frag - 0.5).abs() < 1e-9);
        h.free(&mut os, b.addr).unwrap();
        assert_eq!(h.address_space().1, 128);
    }

    #[test]
    fn mixed_policy_blocks_of_equal_stride_do_not_alias() {
        // A padded 64-byte block (stride 192, payload at +64) and an
        // unpadded 192-byte block (stride 192, payload at +0) must not
        // trade placements through the free lists: an unpadded reuse of the
        // padded base would put live payload where the guard line was.
        let mut os = os();
        let mut h = Heap::new(LayoutPolicy::LinePadded);
        let padded = h.alloc(&mut os, 64).unwrap();
        assert_eq!(padded.stride, 192);
        h.free(&mut os, padded.addr).unwrap();
        let plain = h
            .alloc_with_policy(&mut os, 192, LayoutPolicy::LineAligned)
            .unwrap();
        assert_eq!(plain.stride, 192);
        assert!(!plain.reused, "cross-policy reuse of a padded base");
        assert_ne!(plain.base, padded.base);
        // Same policy and footprint still reuses.
        let again = h.alloc(&mut os, 64).unwrap();
        assert!(again.reused);
        assert_eq!(again.base, padded.base);
    }

    #[test]
    fn alloc_with_policy_matches_dedicated_heap_placement() {
        // An all-LineAligned stream through a LinePadded heap lands at the
        // same addresses a pure LineAligned heap would pick: bump rounding
        // depends only on the stride.
        let mut os = os();
        let mut mixed = Heap::new(LayoutPolicy::LinePadded);
        let mut pure = Heap::new(LayoutPolicy::LineAligned);
        for size in [8u64, 64, 100, 300, 1] {
            let a = mixed
                .alloc_with_policy(&mut os, size, LayoutPolicy::LineAligned)
                .unwrap();
            let b = pure.alloc(&mut os, size).unwrap();
            assert_eq!((a.addr, a.base, a.stride), (b.addr, b.base, b.stride));
            assert_eq!(a.pad_before(), 0);
        }
    }

    #[test]
    fn alloc_charges_time() {
        let mut os = os();
        let mut h = Heap::new(LayoutPolicy::Natural);
        let t0 = os.total_cycles();
        h.alloc(&mut os, 8).unwrap();
        assert!(os.total_cycles() > t0);
    }
}
