//! Generational quarantine arena for freed blocks.
//!
//! Recovery-mode tools (MESH- and Selfie-style healing, PAPERS.md) need the
//! *contents* of a freed buffer after the application lets go of it: a read
//! of freed memory can then be served from the quarantine copy instead of
//! whatever the allocator reused the block for. This arena holds host-side
//! snapshots of freed payloads, stamped with a monotonically increasing
//! generation counter and sealed with a trailing canary, evicted FIFO once
//! the arena exceeds its capacity horizon.
//!
//! The arena is pure bookkeeping: it never touches the simulated machine.
//! Tools copy payload bytes out of the simulation at `free` time and consult
//! the arena from their fault handlers.
//!
//! # Example
//!
//! ```
//! use safemem_alloc::QuarantineArena;
//!
//! let mut arena = QuarantineArena::new(4);
//! let generation = arena.quarantine(0x1000, vec![0xAA; 16]);
//! let entry = arena.lookup(0x1000).unwrap();
//! assert_eq!(entry.generation, generation);
//! assert_eq!(entry.payload(), &[0xAA; 16][..]);
//! assert_eq!(arena.verify_canaries(), 0);
//! ```

use std::collections::VecDeque;

/// Width of the trailing canary appended to every quarantined payload.
pub const CANARY_BYTES: usize = 8;

/// Derives the canary sealing a quarantine entry. Deterministic in the
/// (generation, address) pair so verification needs no stored secret, and
/// never all-zero so a zero-fill overwrite is always caught.
#[must_use]
pub fn canary_for(generation: u64, addr: u64) -> [u8; CANARY_BYTES] {
    let mixed = (generation ^ addr.rotate_left(17)).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    mixed.to_le_bytes()
}

/// One quarantined block: a snapshot of the payload at free time plus the
/// trailing canary, stamped with the generation of the free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineEntry {
    /// Payload address of the freed block (what `free` received).
    pub addr: u64,
    /// Generation stamped when the block entered quarantine. Generations
    /// are unique across the arena's lifetime: no two entries — and no
    /// entry and any later one — ever share a generation.
    pub generation: u64,
    /// Payload snapshot followed by [`CANARY_BYTES`] of canary.
    bytes: Vec<u8>,
}

impl QuarantineEntry {
    /// The pre-free payload contents.
    #[must_use]
    pub fn payload(&self) -> &[u8] {
        &self.bytes[..self.bytes.len() - CANARY_BYTES]
    }

    /// Payload length in bytes (canary excluded).
    #[must_use]
    pub fn len(&self) -> usize {
        self.bytes.len() - CANARY_BYTES
    }

    /// `true` when the quarantined payload was empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` while the trailing canary is intact.
    #[must_use]
    pub fn canary_intact(&self) -> bool {
        self.bytes[self.bytes.len() - CANARY_BYTES..] == canary_for(self.generation, self.addr)
    }

    /// Does `addr` fall inside this entry's payload span?
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.addr && addr < self.addr + self.len() as u64
    }

    /// Absorbs a write into the quarantine copy. Bytes past the payload end
    /// land on the canary — that is the point: a trailing write is recorded
    /// as a canary violation rather than silently dropped. Bytes past the
    /// canary are discarded.
    pub fn absorb_write(&mut self, offset: usize, data: &[u8]) {
        let end = self.bytes.len().min(offset.saturating_add(data.len()));
        if offset >= end {
            return;
        }
        self.bytes[offset..end].copy_from_slice(&data[..end - offset]);
    }
}

/// FIFO arena of quarantined freed blocks with a bounded capacity horizon.
#[derive(Debug, Default)]
pub struct QuarantineArena {
    entries: VecDeque<QuarantineEntry>,
    capacity: usize,
    next_generation: u64,
    evicted: u64,
}

impl QuarantineArena {
    /// Creates an arena that retains at most `capacity` freed blocks
    /// (oldest evicted first). A capacity of zero quarantines nothing.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: VecDeque::new(),
            capacity,
            next_generation: 1,
            evicted: 0,
        }
    }

    /// Number of blocks currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no blocks are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Blocks evicted over the arena's lifetime.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The generation the next quarantined block will receive.
    #[must_use]
    pub fn next_generation(&self) -> u64 {
        self.next_generation
    }

    /// Quarantines a freed payload snapshot and returns its generation.
    /// If the address is already quarantined (the block was freed, never
    /// reused, and somehow freed again), the stale entry is replaced.
    pub fn quarantine(&mut self, addr: u64, payload: Vec<u8>) -> u64 {
        let generation = self.next_generation;
        self.next_generation += 1;
        self.entries.retain(|e| e.addr != addr);
        let mut bytes = payload;
        bytes.extend_from_slice(&canary_for(generation, addr));
        self.entries.push_back(QuarantineEntry {
            addr,
            generation,
            bytes,
        });
        while self.entries.len() > self.capacity {
            self.entries.pop_front();
            self.evicted += 1;
        }
        generation
    }

    /// Drops the entry for `addr`, if held. Called when the allocator hands
    /// the block back out: the address is live again, so the snapshot (and
    /// its generation) must stop being findable — a live allocation never
    /// aliases a quarantined one.
    pub fn release(&mut self, addr: u64) -> bool {
        let before = self.entries.len();
        self.entries.retain(|e| e.addr != addr);
        self.entries.len() != before
    }

    /// Finds the entry whose payload span contains `addr`.
    #[must_use]
    pub fn lookup(&self, addr: u64) -> Option<&QuarantineEntry> {
        self.entries.iter().find(|e| e.contains(addr))
    }

    /// Mutable variant of [`lookup`](Self::lookup), for absorbing writes.
    pub fn lookup_mut(&mut self, addr: u64) -> Option<&mut QuarantineEntry> {
        self.entries.iter_mut().find(|e| e.contains(addr))
    }

    /// Finds the entry whose payload *starts* at `addr` — the double-free
    /// check, which must not confuse an interior pointer with a block base.
    #[must_use]
    pub fn entry_at(&self, addr: u64) -> Option<&QuarantineEntry> {
        self.entries.iter().find(|e| e.addr == addr)
    }

    /// Sweeps every held entry and counts violated canaries.
    #[must_use]
    pub fn verify_canaries(&self) -> usize {
        self.entries.iter().filter(|e| !e.canary_intact()).count()
    }

    /// Iterates over the held entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &QuarantineEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_eviction_at_the_horizon() {
        let mut arena = QuarantineArena::new(2);
        arena.quarantine(0x1000, vec![1]);
        arena.quarantine(0x2000, vec![2]);
        arena.quarantine(0x3000, vec![3]);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.evicted(), 1);
        assert!(arena.lookup(0x1000).is_none(), "oldest fell off");
        assert!(arena.lookup(0x2000).is_some());
        assert!(arena.lookup(0x3000).is_some());
    }

    #[test]
    fn generations_increase_monotonically() {
        let mut arena = QuarantineArena::new(8);
        let g1 = arena.quarantine(0x1000, vec![0; 4]);
        let g2 = arena.quarantine(0x2000, vec![0; 4]);
        assert!(g2 > g1);
        arena.release(0x2000);
        let g3 = arena.quarantine(0x2000, vec![0; 4]);
        assert!(g3 > g2, "generations never reused, even for the same addr");
    }

    #[test]
    fn interior_pointer_lookup_but_exact_double_free_check() {
        let mut arena = QuarantineArena::new(4);
        arena.quarantine(0x1000, vec![0xCC; 64]);
        assert!(arena.lookup(0x1020).is_some(), "interior read resolves");
        assert!(arena.entry_at(0x1020).is_none(), "not a block base");
        assert!(arena.entry_at(0x1000).is_some());
    }

    #[test]
    fn trailing_write_trips_the_canary() {
        let mut arena = QuarantineArena::new(4);
        arena.quarantine(0x1000, vec![0; 8]);
        assert_eq!(arena.verify_canaries(), 0);
        let entry = arena.lookup_mut(0x1000).unwrap();
        entry.absorb_write(6, &[0xFF; 4]); // 2 in-bounds + 2 canary bytes
        assert_eq!(entry.payload()[6..], [0xFF, 0xFF]);
        assert_eq!(arena.verify_canaries(), 1);
    }

    #[test]
    fn in_bounds_write_keeps_the_canary() {
        let mut arena = QuarantineArena::new(4);
        arena.quarantine(0x1000, vec![0; 8]);
        arena.lookup_mut(0x1000).unwrap().absorb_write(0, &[1; 8]);
        assert_eq!(arena.verify_canaries(), 0);
    }

    #[test]
    fn zero_capacity_holds_nothing() {
        let mut arena = QuarantineArena::new(0);
        arena.quarantine(0x1000, vec![1, 2, 3]);
        assert!(arena.is_empty());
        assert_eq!(arena.evicted(), 1);
    }
}
