//! # SafeMem — a full reproduction of the HPCA 2005 paper
//!
//! *"SafeMem: Exploiting ECC-Memory for Detecting Memory Leaks and Memory
//! Corruption During Production Runs"* (Feng Qin, Shan Lu, Yuanyuan Zhou).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`ecc`] | `safemem-ecc` | SEC-DED(72,64) codec, ECC memory + controller, scramble trick |
//! | [`cache`] | `safemem-cache` | exclusive write-back cache hierarchy |
//! | [`machine`] | `safemem-machine` | clock + cost model + physical access path |
//! | [`os`] | `safemem-os` | virtual memory, the three SafeMem syscalls, fault routing |
//! | [`alloc`] | `safemem-alloc` | heap allocator with the four layout policies |
//! | [`core`] | `safemem-core` | **the paper's contribution**: leak + corruption detection |
//! | [`baselines`] | `safemem-baselines` | Purify-class checker, page-guard tool |
//! | [`workloads`] | `safemem-workloads` | the seven evaluated applications |
//! | [`faultinject`] | `safemem-faultinject` | deterministic fault-injection campaigns + differential oracle |
//!
//! ## Quick start
//!
//! ```
//! use safemem::prelude::*;
//!
//! // A simulated machine with ECC memory, and SafeMem watching the heap.
//! let mut os = Os::with_defaults(1 << 22);
//! let mut tool = SafeMem::builder().build(&mut os);
//!
//! // A 100-byte buffer...
//! let site = CallStack::new(&[0x401000]);
//! let buf = tool.malloc(&mut os, 100, &site);
//! tool.write(&mut os, buf, &[0u8; 100]);
//!
//! // ...and a classic off-by-N overflow: caught by the watched padding.
//! tool.write(&mut os, buf + 120, &[1u8; 16]);
//! assert!(tool.all_reports().iter().any(|r| r.is_corruption()));
//! ```
//!
//! See `examples/` for runnable scenarios and the `safemem-bench` crate for
//! the code regenerating every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;

pub use safemem_alloc as alloc;
pub use safemem_baselines as baselines;
pub use safemem_cache as cache;
pub use safemem_core as core;
pub use safemem_ecc as ecc;
pub use safemem_faultinject as faultinject;
pub use safemem_machine as machine;
pub use safemem_os as os;
pub use safemem_workloads as workloads;

/// The most commonly used items, for `use safemem::prelude::*`.
pub mod prelude {
    pub use safemem_baselines::{PageGuard, Purify};
    pub use safemem_core::{
        BugReport, CallStack, GroupKey, LeakConfig, LeakKind, MemTool, NullTool, SafeMem,
    };
    pub use safemem_os::{Os, OsConfig, OsFault, SwapPolicy};
    pub use safemem_workloads::{
        all_workloads, run_under, workload_by_name, InputMode, RunConfig, Workload,
    };
}
