//! `safemem-campaign`: fan out deterministic fault-injection campaigns and
//! print the differential oracle's scorecards. See `safemem-campaign --help`.
//!
//! Exit status: 0 if every campaign upheld its preset's invariant, 1 if the
//! harsh zero-false-positive gate was violated or the sweep failed, 2 on a
//! command-line error.

use safemem::cli::CampaignCli;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match CampaignCli::parse(args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    match cli.execute() {
        Ok((report, ok)) => {
            print!("{report}");
            if !ok {
                eprintln!("FAIL: a campaign violated the zero-false-positive invariant");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
