//! `safemem-run`: run any Table-1 application under any memory tool from
//! the command line. See `safemem-run --help`.

use safemem::cli::Cli;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match Cli::parse(args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    match cli.execute() {
        Ok((result, summary)) => {
            print!("{summary}");
            if !cli.verbose {
                for report in &result.reports {
                    println!("  {report}");
                }
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
