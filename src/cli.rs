//! Command-line interface of the `safemem-run` binary: run any of the seven
//! evaluated applications under any tool, record/replay traces, and print
//! reports and statistics.

use crate::baselines::{Memcheck, PageGuard, Purify};
use crate::core::{MemTool, NullTool, SafeMem};
use crate::os::{Os, STATIC_BASE};
use crate::workloads::{
    all_workloads, run_under, workload_by_name, InputMode, Recorder, RunConfig, RunResult, Trace,
};
use std::fmt;

/// Which tool to run under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ToolChoice {
    /// Uninstrumented baseline.
    None,
    /// SafeMem with both detectors.
    SafeMem,
    /// SafeMem, leak detection only.
    SafeMemMl,
    /// SafeMem, corruption detection only.
    SafeMemMc,
    /// The Purify-class checker.
    Purify,
    /// The Memcheck-class checker.
    Memcheck,
    /// The page-guard tool.
    PageGuard,
}

impl ToolChoice {
    fn parse(s: &str) -> Result<Self, CliError> {
        Ok(match s {
            "none" | "baseline" => ToolChoice::None,
            "safemem" => ToolChoice::SafeMem,
            "safemem-ml" => ToolChoice::SafeMemMl,
            "safemem-mc" => ToolChoice::SafeMemMc,
            "purify" => ToolChoice::Purify,
            "memcheck" => ToolChoice::Memcheck,
            "pageguard" | "page-guard" => ToolChoice::PageGuard,
            other => return Err(CliError(format!("unknown tool {other:?}"))),
        })
    }
}

/// A parsed command line.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Application name from Table 1.
    pub app: String,
    /// Tool to run under.
    pub tool: ToolChoice,
    /// Input mode.
    pub input: InputMode,
    /// Request count override.
    pub requests: Option<u64>,
    /// RNG seed.
    pub seed: u64,
    /// Write the recorded op trace to this file.
    pub trace_out: Option<String>,
    /// Replay a trace file instead of running the app.
    pub replay: Option<String>,
    /// Print per-report details.
    pub verbose: bool,
    /// Print the kernel /proc snapshot after the run.
    pub stats: bool,
}

/// A command-line parsing error, with usage guidance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// Usage text for `safemem-run`.
#[must_use]
pub fn usage() -> String {
    let apps: Vec<&str> = all_workloads().iter().map(|w| w.spec().name).collect();
    format!(
        "safemem-run — run a Table-1 application under a memory tool\n\
         \n\
         USAGE:\n  safemem-run --app <name> [options]\n  safemem-run --replay <trace-file> [--tool <tool>]\n\
         \n\
         OPTIONS:\n\
         \x20 --app <name>        one of: {apps}\n\
         \x20 --tool <tool>       none | safemem | safemem-ml | safemem-mc | purify | memcheck | pageguard (default safemem)\n\
         \x20 --input <mode>      normal | buggy (default normal)\n\
         \x20 --requests <n>      request count (default: the app's)\n\
         \x20 --seed <n>          RNG seed (default 0x5AFE3E3)\n\
         \x20 --trace-out <file>  record the op trace to <file>\n\
         \x20 --replay <file>     replay a recorded trace instead of an app\n\
         \x20 --verbose           print every report\n\
         \x20 --stats             print the kernel /proc snapshot after the run\n\
         \x20 --list              list the available applications\n",
        apps = apps.join(" | ")
    )
}

impl Cli {
    /// Parses arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`CliError`] for unknown flags, missing values, or bad
    /// numbers; the message explains which.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, CliError> {
        let mut cli = Cli {
            app: String::new(),
            tool: ToolChoice::SafeMem,
            input: InputMode::Normal,
            requests: None,
            seed: 0x05AF_E3E3,
            trace_out: None,
            replay: None,
            verbose: false,
            stats: false,
        };
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let mut value = |flag: &str| {
                args.next()
                    .ok_or_else(|| CliError(format!("{flag} needs a value")))
            };
            match arg.as_str() {
                "--app" => cli.app = value("--app")?,
                "--tool" => cli.tool = ToolChoice::parse(&value("--tool")?)?,
                "--input" => {
                    cli.input = match value("--input")?.as_str() {
                        "normal" => InputMode::Normal,
                        "buggy" => InputMode::Buggy,
                        other => return Err(CliError(format!("unknown input mode {other:?}"))),
                    }
                }
                "--requests" => {
                    cli.requests = Some(
                        value("--requests")?
                            .parse()
                            .map_err(|_| CliError("--requests needs an integer".into()))?,
                    );
                }
                "--seed" => {
                    cli.seed = value("--seed")?
                        .parse()
                        .map_err(|_| CliError("--seed needs an integer".into()))?;
                }
                "--trace-out" => cli.trace_out = Some(value("--trace-out")?),
                "--replay" => cli.replay = Some(value("--replay")?),
                "--verbose" | "-v" => cli.verbose = true,
                "--stats" => cli.stats = true,
                "--list" => {
                    let mut msg = String::from("applications:\n");
                    for w in all_workloads()
                        .into_iter()
                        .chain(crate::workloads::extension_workloads())
                    {
                        let s = w.spec();
                        msg.push_str(&format!(
                            "  {:<10} {:<28} {}\n",
                            s.name,
                            s.bug.to_string(),
                            s.description
                        ));
                    }
                    return Err(CliError(msg));
                }
                "--help" | "-h" => return Err(CliError(usage())),
                other => return Err(CliError(format!("unknown flag {other:?}\n\n{}", usage()))),
            }
        }
        if cli.app.is_empty() && cli.replay.is_none() {
            return Err(CliError(format!(
                "--app or --replay is required\n\n{}",
                usage()
            )));
        }
        Ok(cli)
    }

    fn build_tool(&self, os: &mut Os) -> Box<dyn MemTool> {
        match self.tool {
            ToolChoice::None => Box::new(NullTool::new()),
            ToolChoice::SafeMem => Box::new(SafeMem::builder().build(os)),
            ToolChoice::SafeMemMl => {
                Box::new(SafeMem::builder().corruption_detection(false).build(os))
            }
            ToolChoice::SafeMemMc => Box::new(SafeMem::builder().leak_detection(false).build(os)),
            ToolChoice::Purify => {
                let mut tool = Purify::new();
                tool.add_root_range(STATIC_BASE, 4096);
                Box::new(tool)
            }
            ToolChoice::Memcheck => {
                let mut tool = Memcheck::new();
                tool.add_root_range(STATIC_BASE, 4096);
                Box::new(tool)
            }
            ToolChoice::PageGuard => Box::new(PageGuard::new()),
        }
    }

    /// Executes the parsed command, returning the run's result and a
    /// human-readable summary.
    ///
    /// # Errors
    ///
    /// Returns [`CliError`] for unknown apps or unreadable/invalid traces.
    pub fn execute(&self) -> Result<(RunResult, String), CliError> {
        let mut os = Os::with_defaults(1 << 26);
        let mut tool = self.build_tool(&mut os);

        let result = if let Some(path) = &self.replay {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
            let trace = Trace::from_text(&text).map_err(CliError)?;
            trace.replay(&mut os, tool.as_mut())
        } else {
            let workload = workload_by_name(&self.app)
                .ok_or_else(|| CliError(format!("unknown app {:?}\n\n{}", self.app, usage())))?;
            let cfg = RunConfig {
                input: self.input,
                requests: self.requests,
                seed: self.seed,
            };
            if let Some(path) = &self.trace_out {
                let mut recorder = if workload.records_freed_accesses() {
                    Recorder::with_freed_tracking(tool.as_mut())
                } else {
                    Recorder::new(tool.as_mut())
                };
                workload.run(&mut os, &mut recorder, &cfg);
                let trace = recorder.into_trace();
                std::fs::write(path, trace.to_text())
                    .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
                tool.finish(&mut os);
                RunResult {
                    cpu_cycles: os.cpu_cycles(),
                    reports: tool.reports(),
                    heap_stats: tool.heap().stats(),
                }
            } else {
                run_under(workload.as_ref(), &mut os, tool.as_mut(), &cfg)
            }
        };

        let mut summary = String::new();
        use std::fmt::Write as _;
        let _ = writeln!(
            summary,
            "cpu time: {:.3} ms simulated | allocs: {} | live: {} B | space overhead: {:.2}%",
            os.cpu_ns() as f64 / 1e6,
            result.heap_stats.allocs,
            result.heap_stats.live_payload,
            result.heap_stats.overhead_percent(),
        );
        let _ = writeln!(summary, "reports: {}", result.reports.len());
        if self.stats {
            let _ = write!(summary, "{}", safemem_os::procfs::snapshot(&os));
        }
        if self.verbose {
            let _ = write!(
                summary,
                "{}",
                safemem_core::Diagnosis::from_reports(&result.reports).render()
            );
            let _ = writeln!(summary, "\n--- kernel log (tail) ---");
            let entries: Vec<_> = os.kernel_log().entries().collect();
            let tail = entries.len().saturating_sub(10);
            for entry in &entries[tail..] {
                let _ = writeln!(summary, "{entry}");
            }
        }
        Ok((result, summary))
    }
}

/// Usage text for `safemem-campaign`.
#[must_use]
pub fn campaign_usage() -> String {
    format!(
        "safemem-campaign — deterministic fault-injection campaigns with a differential oracle\n\
         \n\
         USAGE:\n  safemem-campaign [--preset <name>] [--seeds <n>] [options]\n\
         \n\
         OPTIONS:\n\
         \x20 --preset <name>     {presets} (default harsh)\n\
         \x20                     arena runs SafeMem with recovery enabled against the\n\
         \x20                     synthetic-CVE corruption workloads and scores\n\
         \x20                     survival-with-integrity alongside detection;\n\
         \x20                     frontier sweeps a ladder of sampling rates over the\n\
         \x20                     same recorded traces and scores detection probability\n\
         \x20                     against simulated overhead, per rate and bug class;\n\
         \x20                     fleet runs a multi-process churn fleet on one shared\n\
         \x20                     machine at a sub-1.0 sampling rate and scores the\n\
         \x20                     fleet-level detection probability 1-(1-r)^n\n\
         \x20 --processes <n>     fleet size, at least 1 (default {fleet_procs}; requires\n\
         \x20                     --preset fleet, which sizes by processes instead of\n\
         \x20                     --seeds)\n\
         \x20 --fleet-shards <n>  partition the shared-machine fleet (phase A) into n\n\
         \x20                     parallel shards, each owning its own machine sized to\n\
         \x20                     its processes' frame windows (default 1, at least 1;\n\
         \x20                     requires --preset fleet; the merged scorecard is\n\
         \x20                     byte-identical for every shard count)\n\
         \x20 --bench-shards <a,b> run the fleet once per shard count, cross-check the\n\
         \x20                     scorecards are identical, and report the phase-A speedup\n\
         \x20 --fleet-sweep       grid sampling rate x fleet size over shared recorded\n\
         \x20                     traces and report the knee of observed fleet-level\n\
         \x20                     detection (requires --preset fleet)\n\
         \x20 --seeds <n>         number of campaign seeds to fan out (default 8)\n\
         \x20 --seed0 <n>         first seed (default 0)\n\
         \x20 --workloads <a,b>   comma-separated workload names (default: {workloads};\n\
         \x20                     for --preset arena: {arena_workloads};\n\
         \x20                     for --preset frontier: both lists combined)\n\
         \x20 --sampling <a,b>    comma-separated sampling rates in [0, 1] for the\n\
         \x20                     frontier ladder (default {frontier_rates}; requires\n\
         \x20                     --preset frontier)\n\
         \x20 --requests <n>      request count override\n\
         \x20 --threads <n>       worker threads sharding the campaign matrix\n\
         \x20                     (default: available parallelism; the scorecard is\n\
         \x20                     byte-identical for every thread count)\n\
         \x20 --bench-threads <a,b> run the matrix once per thread count, cross-check\n\
         \x20                     the scorecards are identical, and report the speedup\n\
         \x20 --bench-json <file> write the measured thread-scaling numbers as JSON\n\
         \x20 --fresh-record      record a private trace per cell instead of sharing\n\
         \x20                     one recording per unique (workload, os-shape) key;\n\
         \x20                     the scorecard is byte-identical either way\n\
         \x20 --trace-corpus <dir> persistent trace corpus: load recorded traces from\n\
         \x20                     versioned snapshot files in <dir> instead of\n\
         \x20                     re-recording (the scorecard is byte-identical\n\
         \x20                     either way)\n\
         \x20 --corpus-mode <m>   auto | record | replay-from (default auto; requires\n\
         \x20                     --trace-corpus). auto loads what is present and\n\
         \x20                     records the rest; record rewrites every snapshot;\n\
         \x20                     replay-from fails if any snapshot is missing or\n\
         \x20                     invalid — the CI replay leg\n\
         \x20 --verbose           print every per-campaign scorecard, not just the aggregate\n",
        presets = crate::faultinject::CampaignSpec::PRESETS.join(" | "),
        fleet_procs = crate::faultinject::DEFAULT_FLEET_PROCESSES,
        workloads = crate::faultinject::spec::PRESET_WORKLOADS.join(","),
        arena_workloads = crate::faultinject::spec::CVE_WORKLOADS.join(","),
        frontier_rates = crate::faultinject::FRONTIER_RATES_PPM
            .iter()
            .map(|&ppm| format!("{}", f64::from(ppm) / f64::from(safemem_core::PPM)))
            .collect::<Vec<_>>()
            .join(","),
    )
}

/// A parsed `safemem-campaign` command line.
#[derive(Debug, Clone)]
pub struct CampaignCli {
    /// Campaign preset name.
    pub preset: String,
    /// Number of seeds to fan out.
    pub seeds: u64,
    /// First seed.
    pub seed0: u64,
    /// Workloads to sweep.
    pub workloads: Vec<String>,
    /// Request count override (None = the preset's).
    pub requests: Option<u64>,
    /// Fleet size (None = [`DEFAULT_FLEET_PROCESSES`]). Only meaningful
    /// with the `fleet` preset, which sizes by processes instead of
    /// `--seeds`; every other preset rejects the flag.
    ///
    /// [`DEFAULT_FLEET_PROCESSES`]: crate::faultinject::DEFAULT_FLEET_PROCESSES
    pub processes: Option<u64>,
    /// Shards the shared-machine fleet (phase A) is partitioned into
    /// (None = 1, the single-machine reference). Only meaningful with the
    /// `fleet` preset; the merged scorecard is byte-identical for every
    /// shard count.
    pub fleet_shards: Option<usize>,
    /// Shard counts to measure the same fleet at (empty = run once at
    /// `fleet_shards`). Every run's scorecard is cross-checked
    /// byte-identical; only the wall clock may differ.
    pub bench_shards: Vec<usize>,
    /// Run the sampling-rate × fleet-size sweep after the fleet campaign
    /// and append its knee scorecard. Only meaningful with the `fleet`
    /// preset.
    pub fleet_sweep: bool,
    /// Sampling-rate ladder in parts-per-million, high to low as given.
    /// Only meaningful with the `frontier` preset (empty = its default
    /// ladder); every other preset runs always-on and rejects the flag.
    pub sampling_ppm: Vec<u32>,
    /// Worker threads sharding the matrix (None = available parallelism).
    pub threads: Option<usize>,
    /// Thread counts to measure the same matrix at (empty = run once at
    /// `threads`). Every run's scorecard is cross-checked byte-identical.
    pub bench_threads: Vec<usize>,
    /// Write measured thread-scaling numbers to this file as JSON.
    pub bench_json: Option<String>,
    /// Record a private trace per cell ([`TraceMode::FreshRecord`]) instead
    /// of sharing one recording per unique trace key.
    ///
    /// [`TraceMode::FreshRecord`]: crate::faultinject::TraceMode::FreshRecord
    pub fresh_record: bool,
    /// Persistent trace corpus directory (None = always record in memory).
    pub trace_corpus: Option<String>,
    /// How the corpus is used; only meaningful with `trace_corpus`.
    pub corpus_mode: crate::faultinject::CorpusMode,
    /// Print per-campaign scorecards.
    pub verbose: bool,
}

impl CampaignCli {
    /// Parses arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`CliError`] for unknown flags, missing values, or bad
    /// numbers; the message explains which.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, CliError> {
        let mut cli = CampaignCli {
            preset: "harsh".into(),
            seeds: 8,
            seed0: 0,
            workloads: Vec::new(),
            requests: None,
            processes: None,
            fleet_shards: None,
            bench_shards: Vec::new(),
            fleet_sweep: false,
            sampling_ppm: Vec::new(),
            threads: None,
            bench_threads: Vec::new(),
            bench_json: None,
            fresh_record: false,
            trace_corpus: None,
            corpus_mode: crate::faultinject::CorpusMode::Auto,
            verbose: false,
        };
        let mut corpus_mode_given = false;
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let mut value = |flag: &str| {
                args.next()
                    .ok_or_else(|| CliError(format!("{flag} needs a value")))
            };
            match arg.as_str() {
                "--preset" => cli.preset = value("--preset")?,
                "--seeds" => {
                    cli.seeds = value("--seeds")?
                        .parse()
                        .map_err(|_| CliError("--seeds needs an integer".into()))?;
                }
                "--seed0" => {
                    cli.seed0 = value("--seed0")?
                        .parse()
                        .map_err(|_| CliError("--seed0 needs an integer".into()))?;
                }
                "--workloads" => {
                    cli.workloads = value("--workloads")?
                        .split(',')
                        .map(str::to_string)
                        .collect();
                }
                "--requests" => {
                    cli.requests = Some(
                        value("--requests")?
                            .parse()
                            .map_err(|_| CliError("--requests needs an integer".into()))?,
                    );
                }
                "--processes" => {
                    let n: u64 = value("--processes")?
                        .parse()
                        .map_err(|_| CliError("--processes needs an integer".into()))?;
                    if n == 0 {
                        return Err(CliError(
                            "--processes must be at least 1 (got 0); a fleet needs a process"
                                .into(),
                        ));
                    }
                    cli.processes = Some(n);
                }
                "--fleet-shards" => {
                    let n: usize = value("--fleet-shards")?
                        .parse()
                        .map_err(|_| CliError("--fleet-shards needs an integer".into()))?;
                    if n == 0 {
                        return Err(CliError(
                            "--fleet-shards must be at least 1 (got 0); 1 is the \
                             single-machine reference"
                                .into(),
                        ));
                    }
                    cli.fleet_shards = Some(n);
                }
                "--bench-shards" => {
                    cli.bench_shards = value("--bench-shards")?
                        .split(',')
                        .map(|s| {
                            s.trim()
                                .parse::<usize>()
                                .ok()
                                .filter(|&n| n > 0)
                                .ok_or_else(|| {
                                    CliError(
                                        "--bench-shards needs comma-separated positive integers"
                                            .into(),
                                    )
                                })
                        })
                        .collect::<Result<_, _>>()?;
                    if cli.bench_shards.is_empty() {
                        return Err(CliError("--bench-shards needs at least one count".into()));
                    }
                }
                "--fleet-sweep" => cli.fleet_sweep = true,
                "--sampling" => {
                    cli.sampling_ppm = value("--sampling")?
                        .split(',')
                        .map(|s| {
                            s.trim()
                                .parse::<f64>()
                                .ok()
                                .filter(|r| (0.0..=1.0).contains(r))
                                .map(|r| {
                                    #[allow(clippy::cast_possible_truncation)]
                                    #[allow(clippy::cast_sign_loss)]
                                    let ppm = (r * f64::from(safemem_core::PPM)).round() as u32;
                                    ppm
                                })
                                .ok_or_else(|| {
                                    CliError(
                                        "--sampling needs comma-separated rates in [0, 1]".into(),
                                    )
                                })
                        })
                        .collect::<Result<_, _>>()?;
                }
                "--threads" => {
                    let n: usize = value("--threads")?
                        .parse()
                        .map_err(|_| CliError("--threads needs an integer".into()))?;
                    if n == 0 {
                        return Err(CliError(
                            "--threads must be at least 1 (omit it for auto)".into(),
                        ));
                    }
                    cli.threads = Some(n);
                }
                "--bench-threads" => {
                    cli.bench_threads = value("--bench-threads")?
                        .split(',')
                        .map(|s| {
                            s.trim()
                                .parse::<usize>()
                                .ok()
                                .filter(|&n| n > 0)
                                .ok_or_else(|| {
                                    CliError(
                                        "--bench-threads needs comma-separated positive integers"
                                            .into(),
                                    )
                                })
                        })
                        .collect::<Result<_, _>>()?;
                    if cli.bench_threads.is_empty() {
                        return Err(CliError("--bench-threads needs at least one count".into()));
                    }
                }
                "--bench-json" => cli.bench_json = Some(value("--bench-json")?),
                "--fresh-record" => cli.fresh_record = true,
                "--trace-corpus" => cli.trace_corpus = Some(value("--trace-corpus")?),
                "--corpus-mode" => {
                    cli.corpus_mode =
                        crate::faultinject::CorpusMode::parse(&value("--corpus-mode")?)
                            .map_err(CliError)?;
                    corpus_mode_given = true;
                }
                "--verbose" | "-v" => cli.verbose = true,
                "--help" | "-h" => return Err(CliError(campaign_usage())),
                other => {
                    return Err(CliError(format!(
                        "unknown flag {other:?}\n\n{}",
                        campaign_usage()
                    )))
                }
            }
        }
        if cli.seeds == 0 {
            return Err(CliError("--seeds must be at least 1".into()));
        }
        if corpus_mode_given && cli.trace_corpus.is_none() {
            return Err(CliError(
                "--corpus-mode requires --trace-corpus <dir>".into(),
            ));
        }
        if !cli.sampling_ppm.is_empty() && cli.preset != "frontier" {
            return Err(CliError(
                "--sampling requires --preset frontier (other presets run always-on)".into(),
            ));
        }
        if cli.processes.is_some() && cli.preset != "fleet" {
            return Err(CliError(
                "--processes requires --preset fleet (other presets size with --seeds)".into(),
            ));
        }
        if cli.preset != "fleet" {
            if cli.fleet_shards.is_some() {
                return Err(CliError(
                    "--fleet-shards requires --preset fleet (other presets shard with --threads)"
                        .into(),
                ));
            }
            if !cli.bench_shards.is_empty() {
                return Err(CliError(
                    "--bench-shards requires --preset fleet (other presets use --bench-threads)"
                        .into(),
                ));
            }
            if cli.fleet_sweep {
                return Err(CliError("--fleet-sweep requires --preset fleet".into()));
            }
        }
        if cli.preset == "fleet" && !cli.workloads.is_empty() {
            return Err(CliError(
                "--preset fleet always sweeps the churn family; --workloads does not apply".into(),
            ));
        }
        if cli.workloads.is_empty() && cli.preset != "fleet" {
            // The arena preset sweeps the synthetic-CVE family by default;
            // the frontier sweeps every bug class (Table 1 subset plus the
            // CVE family); every other preset sweeps the Table 1 subset.
            use crate::faultinject::spec::{CVE_WORKLOADS, PRESET_WORKLOADS};
            cli.workloads = match cli.preset.as_str() {
                "arena" => CVE_WORKLOADS.iter().map(|s| (*s).to_string()).collect(),
                "frontier" => PRESET_WORKLOADS
                    .iter()
                    .chain(CVE_WORKLOADS.iter())
                    .map(|s| (*s).to_string())
                    .collect(),
                _ => PRESET_WORKLOADS.iter().map(|s| (*s).to_string()).collect(),
            };
        }
        if cli.preset == "frontier" && cli.sampling_ppm.is_empty() {
            cli.sampling_ppm = crate::faultinject::FRONTIER_RATES_PPM.to_vec();
        }
        Ok(cli)
    }

    /// Opens the configured trace corpus, if any.
    fn open_corpus(&self) -> Result<Option<crate::faultinject::TraceCorpus>, CliError> {
        match &self.trace_corpus {
            None => Ok(None),
            Some(dir) => crate::faultinject::TraceCorpus::open(dir, self.corpus_mode)
                .map(Some)
                .map_err(|e| CliError(e.to_string())),
        }
    }

    /// Runs the campaign sweep, sharded across worker threads. Returns the
    /// rendered report and whether every campaign upheld the preset's
    /// invariant (always `true` for presets that inject uncorrectable
    /// errors — they have no zero-false-positive guarantee to check).
    ///
    /// The report has two parts: the deterministic scorecard (per-campaign
    /// cards with `--verbose`, then the aggregate), which is byte-identical
    /// for every `--threads` value, followed by schedule-dependent execution
    /// telemetry (worker balance, wall time, thread-scaling measurements).
    ///
    /// # Errors
    ///
    /// Returns [`CliError`] for an unknown preset or workload, an unwritable
    /// `--bench-json` path, or — defensively — if a `--bench-threads`
    /// cross-check ever catches two thread counts disagreeing on the
    /// scorecard.
    pub fn execute(&self) -> Result<(String, bool), CliError> {
        use crate::faultinject::{
            default_threads, expand_frontier, expand_matrix, render_bench_json,
            render_frontier_bench_json, render_worker_table, run_matrix_streamed_corpus, BenchRun,
            StreamAggregate, StreamReport, TraceMode,
        };

        if self.preset == "fleet" {
            return self.execute_fleet();
        }

        let frontier = self.preset == "frontier";
        let specs = if frontier {
            expand_frontier(
                &self.preset,
                &self.sampling_ppm,
                &self.workloads,
                self.seeds,
                self.seed0,
                self.requests,
            )
        } else {
            expand_matrix(
                &self.preset,
                &self.workloads,
                self.seeds,
                self.seed0,
                self.requests,
            )
        }
        .map_err(|e| CliError(e.0))?;
        let threads = self.threads.unwrap_or_else(default_threads);
        let thread_counts = if self.bench_threads.is_empty() {
            vec![threads]
        } else {
            self.bench_threads.clone()
        };

        let mode = if self.fresh_record {
            TraceMode::FreshRecord
        } else {
            TraceMode::Memoized
        };
        let corpus = self.open_corpus()?;
        // Each cell folds into a fixed-size aggregate as it finishes — peak
        // memory is the aggregate's footprint, not the matrix size. The
        // frontier variant also maintains one row per sampling rate, which
        // its render appends, so the rendered aggregate *is* the
        // deterministic scorecard the cross-thread-count check pins.
        let mut runs = Vec::with_capacity(thread_counts.len());
        let mut first: Option<(StreamReport, String)> = None;
        for &t in &thread_counts {
            let seed_aggregate = if frontier {
                StreamAggregate::with_frontier(&specs)
            } else {
                StreamAggregate::new()
            };
            let stream = run_matrix_streamed_corpus(
                &specs,
                t,
                mode,
                self.verbose,
                seed_aggregate,
                corpus.as_ref(),
            )
            .map_err(|e| CliError(e.0))?;
            let aggregate = stream.aggregate.render();
            runs.push(BenchRun {
                threads: t,
                wall: stream.wall,
                campaigns: stream.aggregate.campaigns(),
                boot: None,
            });
            match &first {
                None => first = Some((stream, aggregate)),
                Some((_, reference)) => {
                    if aggregate != *reference {
                        return Err(CliError(format!(
                            "determinism violation: {t} threads produced a different \
                             scorecard than {} threads",
                            thread_counts[0]
                        )));
                    }
                }
            }
        }
        let (stream, aggregate) = first.expect("at least one thread count runs");

        let mut report = String::new();
        for (_, card) in &stream.cards {
            report.push_str(card);
            report.push('\n');
        }
        report.push_str(&aggregate);
        report.push_str(&render_worker_table(
            stream.aggregate.campaigns(),
            stream.threads,
            stream.wall,
            &stream.workers,
        ));
        report.push_str(&scaling_lines(&runs));
        if let Some(path) = &self.bench_json {
            let json = if frontier {
                render_frontier_bench_json(
                    &self.preset,
                    self.requests,
                    &runs,
                    stream
                        .aggregate
                        .frontier_rows()
                        .expect("the frontier aggregate maintains its rows"),
                )
            } else {
                render_bench_json(&self.preset, self.requests, &runs)
            };
            std::fs::write(path, json)
                .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
        }

        // Sampled-out allocations legitimately miss their planted bug, so
        // the full harsh invariant only binds the frontier's always-on rung;
        // what binds every rung is zero false positives from sampling.
        let ok = if frontier {
            stream.aggregate.frontier_invariants_hold()
        } else {
            stream.aggregate.invariants_hold()
        };
        Ok((report, ok))
    }

    /// The `fleet` preset: a two-phase multi-process campaign (sharded
    /// shared-machine fleet, then sharded per-process cells) with its own
    /// scorecard, optional shard-scaling measurements, and the optional
    /// rate × fleet-size sweep.
    fn execute_fleet(&self) -> Result<(String, bool), CliError> {
        use crate::faultinject::{
            default_threads, expand_fleet, render_fleet, render_fleet_bench_json,
            render_fleet_sweep, render_worker_table, run_fleet_corpus, run_fleet_sweep,
            splice_sweep_json, BenchRun, FleetOutcome, ShardRun, SweepConfig, TraceMode,
            DEFAULT_FLEET_PROCESSES, SWEEP_FLEET_SIZES,
        };

        let processes = self.processes.unwrap_or(DEFAULT_FLEET_PROCESSES);
        let specs =
            expand_fleet(processes, self.seed0, self.requests).map_err(|e| CliError(e.0))?;
        let threads = self.threads.unwrap_or_else(default_threads);
        let thread_counts = if self.bench_threads.is_empty() {
            vec![threads]
        } else {
            self.bench_threads.clone()
        };
        let shards = self.fleet_shards.unwrap_or(1);
        let mode = if self.fresh_record {
            TraceMode::FreshRecord
        } else {
            TraceMode::Memoized
        };
        let corpus = self.open_corpus()?;

        // Thread-scaling runs (phase B workers) at the configured phase-A
        // shard count.
        let mut runs = Vec::with_capacity(thread_counts.len());
        let mut first: Option<(FleetOutcome, String)> = None;
        for &t in &thread_counts {
            let outcome = run_fleet_corpus(&specs, t, shards, mode, corpus.as_ref())
                .map_err(|e| CliError(e.0))?;
            let card = render_fleet(&outcome);
            runs.push(BenchRun {
                threads: t,
                wall: outcome.wall,
                campaigns: specs.len(),
                boot: Some(outcome.boot_wall),
            });
            match &first {
                None => first = Some((outcome, card)),
                Some((_, reference)) => {
                    if card != *reference {
                        return Err(CliError(format!(
                            "determinism violation: {t} threads produced a different \
                             fleet scorecard than {} threads",
                            thread_counts[0]
                        )));
                    }
                }
            }
        }
        let (outcome, card) = first.expect("at least one thread count runs");

        // Shard-scaling runs (phase A partitioning): same fleet, same
        // scorecard, different machine count — only the wall clock may
        // move, and the cross-check enforces exactly that.
        let mut shard_runs: Vec<ShardRun> = Vec::with_capacity(self.bench_shards.len());
        for &s in &self.bench_shards {
            let shard_outcome =
                run_fleet_corpus(&specs, thread_counts[0], s, mode, corpus.as_ref())
                    .map_err(|e| CliError(e.0))?;
            if render_fleet(&shard_outcome) != card {
                return Err(CliError(format!(
                    "determinism violation: {s} shards produced a different fleet \
                     scorecard than {shards} shards"
                )));
            }
            shard_runs.push(ShardRun {
                shards: shard_outcome.shards,
                wall: shard_outcome.wall,
                boot_wall: shard_outcome.boot_wall,
                campaigns: specs.len() as u64,
            });
        }

        let mut report = card;
        report.push_str(&render_worker_table(
            specs.len(),
            outcome.threads,
            outcome.wall,
            &outcome.workers,
        ));
        report.push_str(&scaling_lines(&runs));
        report.push_str(&shard_scaling_lines(&shard_runs));

        // The sweep grids rate × size over its own shared traces; sizes are
        // clamped to the fleet size so `--processes` bounds the work.
        let sweep = if self.fleet_sweep {
            let mut sizes: Vec<u64> = SWEEP_FLEET_SIZES
                .iter()
                .copied()
                .filter(|&n| n <= processes)
                .collect();
            if sizes.is_empty() {
                sizes = vec![processes];
            }
            let config = SweepConfig {
                seed0: self.seed0,
                requests: self.requests,
                sizes,
                ..SweepConfig::default()
            };
            let sweep_outcome = run_fleet_sweep(&config, thread_counts[0], corpus.as_ref())
                .map_err(|e| CliError(e.0))?;
            report.push_str(&render_fleet_sweep(&sweep_outcome));
            Some(sweep_outcome)
        } else {
            None
        };

        if let Some(path) = &self.bench_json {
            let mut json =
                render_fleet_bench_json(&self.preset, self.requests, &runs, &shard_runs, &outcome);
            if let Some(sweep) = &sweep {
                json = splice_sweep_json(&json, sweep);
            }
            std::fs::write(path, json)
                .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
        }
        let ok =
            outcome.agg.invariants_hold() && sweep.as_ref().is_none_or(|s| s.invariants_hold());
        Ok((report, ok))
    }
}

/// Renders the `--bench-shards` speedup lines (empty without measurements).
/// Schedule-dependent telemetry — not part of the deterministic scorecard.
fn shard_scaling_lines(runs: &[crate::faultinject::ShardRun]) -> String {
    let mut out = String::new();
    if runs.len() > 1 {
        use std::fmt::Write as _;
        let base = runs[0];
        for run in &runs[1..] {
            let speedup = if run.wall.is_zero() {
                1.0
            } else {
                base.wall.as_secs_f64() / run.wall.as_secs_f64()
            };
            let _ = writeln!(
                out,
                "  shard scaling: {} shards {:.1} ms (phase A {:.1} ms) vs {} shards {:.1} ms \
                 (phase A {:.1} ms) — speedup {speedup:.2}x (scorecards byte-identical)",
                run.shards,
                run.wall.as_secs_f64() * 1e3,
                run.boot_wall.as_secs_f64() * 1e3,
                base.shards,
                base.wall.as_secs_f64() * 1e3,
                base.boot_wall.as_secs_f64() * 1e3,
            );
        }
    }
    out
}

/// Renders the `--bench-threads` speedup lines (empty for a single run).
/// Schedule-dependent telemetry, like the worker table — not part of the
/// deterministic scorecard.
fn scaling_lines(runs: &[crate::faultinject::BenchRun]) -> String {
    let mut out = String::new();
    if runs.len() > 1 {
        use std::fmt::Write as _;
        let base = runs[0].wall;
        for run in &runs[1..] {
            let speedup = if run.wall.is_zero() {
                1.0
            } else {
                base.as_secs_f64() / run.wall.as_secs_f64()
            };
            let _ = writeln!(
                out,
                "  scaling: {} threads {:.1} ms vs {} threads {:.1} ms — speedup {speedup:.2}x \
                 (scorecards byte-identical)",
                run.threads,
                run.wall.as_secs_f64() * 1e3,
                runs[0].threads,
                base.as_secs_f64() * 1e3,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, CliError> {
        Cli::parse(args.iter().map(|s| (*s).to_string()))
    }

    #[test]
    fn parses_a_full_command_line() {
        let cli = parse(&[
            "--app",
            "gzip",
            "--tool",
            "purify",
            "--input",
            "buggy",
            "--requests",
            "42",
            "--seed",
            "7",
            "--verbose",
        ])
        .unwrap();
        assert_eq!(cli.app, "gzip");
        assert_eq!(cli.tool, ToolChoice::Purify);
        assert_eq!(cli.input, InputMode::Buggy);
        assert_eq!(cli.requests, Some(42));
        assert_eq!(cli.seed, 7);
        assert!(cli.verbose);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--app"]).is_err());
        assert!(parse(&["--app", "gzip", "--tool", "asan"]).is_err());
        assert!(parse(&["--app", "gzip", "--requests", "many"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
    }

    #[test]
    fn executes_a_buggy_run_end_to_end() {
        let cli = parse(&[
            "--app",
            "tar",
            "--tool",
            "safemem",
            "--input",
            "buggy",
            "--requests",
            "20",
        ])
        .unwrap();
        let (result, summary) = cli.execute().unwrap();
        assert!(result.corruption_detected());
        assert!(summary.contains("reports:"));
    }

    #[test]
    fn unknown_app_is_a_clean_error() {
        let cli = parse(&["--app", "nginx"]).unwrap();
        assert!(cli.execute().is_err());
    }

    fn parse_campaign(args: &[&str]) -> Result<CampaignCli, CliError> {
        CampaignCli::parse(args.iter().map(|s| (*s).to_string()))
    }

    #[test]
    fn campaign_cli_parses_thread_flags() {
        let cli = parse_campaign(&[
            "--preset",
            "harsh",
            "--threads",
            "4",
            "--bench-threads",
            "1,4",
            "--bench-json",
            "out.json",
        ])
        .unwrap();
        assert_eq!(cli.threads, Some(4));
        assert_eq!(cli.bench_threads, vec![1, 4]);
        assert_eq!(cli.bench_json.as_deref(), Some("out.json"));
        // Omitted --threads means auto (available parallelism).
        assert_eq!(parse_campaign(&[]).unwrap().threads, None);
    }

    #[test]
    fn campaign_cli_rejects_bad_thread_flags() {
        assert!(parse_campaign(&["--threads", "0"]).is_err());
        assert!(parse_campaign(&["--threads", "many"]).is_err());
        assert!(parse_campaign(&["--bench-threads", "1,0"]).is_err());
        assert!(parse_campaign(&["--bench-threads", ""]).is_err());
    }

    #[test]
    fn campaign_cli_parses_sampling_ladders() {
        let cli = parse_campaign(&["--preset", "frontier", "--sampling", "1.0,0.5,0.01"]).unwrap();
        assert_eq!(cli.sampling_ppm, vec![1_000_000, 500_000, 10_000]);
        // Frontier defaults: the built-in ladder over every bug class.
        let cli = parse_campaign(&["--preset", "frontier"]).unwrap();
        assert_eq!(
            cli.sampling_ppm,
            crate::faultinject::FRONTIER_RATES_PPM.to_vec()
        );
        assert!(cli.workloads.iter().any(|w| w == "ypserv1"));
        assert!(cli.workloads.iter().any(|w| w == "cve-dfree"));
    }

    #[test]
    fn campaign_cli_rejects_bad_sampling_flags() {
        assert!(
            parse_campaign(&["--sampling", "1.0"]).is_err(),
            "needs frontier preset"
        );
        assert!(parse_campaign(&["--preset", "frontier", "--sampling", "1.5"]).is_err());
        assert!(parse_campaign(&["--preset", "frontier", "--sampling", "-0.1"]).is_err());
        assert!(parse_campaign(&["--preset", "frontier", "--sampling", "half"]).is_err());
        assert!(parse_campaign(&["--preset", "frontier", "--sampling", ""]).is_err());
    }

    #[test]
    fn frontier_campaign_reports_the_rate_ladder() {
        let cli = parse_campaign(&[
            "--preset",
            "frontier",
            "--seeds",
            "1",
            "--workloads",
            "tar,cve-dfree",
            "--requests",
            "24",
            "--sampling",
            "1.0,0.1",
            "--threads",
            "2",
        ])
        .unwrap();
        let (report, ok) = cli.execute().unwrap();
        assert!(ok, "frontier invariant holds:\n{report}");
        assert!(
            report.contains("frontier: overhead vs detection across sampling rates"),
            "{report}"
        );
        assert!(
            report.contains("zero false positives at every sampling rate): OK (2 rates)"),
            "{report}"
        );
    }

    #[test]
    fn campaign_cli_parses_fleet_flags() {
        let cli = parse_campaign(&[
            "--preset",
            "fleet",
            "--processes",
            "24",
            "--fleet-shards",
            "8",
            "--bench-shards",
            "1,2,8",
            "--fleet-sweep",
        ])
        .unwrap();
        assert_eq!(cli.processes, Some(24));
        assert_eq!(cli.fleet_shards, Some(8));
        assert_eq!(cli.bench_shards, vec![1, 2, 8]);
        assert!(cli.fleet_sweep);
        assert!(cli.workloads.is_empty(), "fleet fixes the churn family");
        // Default fleet size is the preset's; default shards are 1.
        let defaults = parse_campaign(&["--preset", "fleet"]).unwrap();
        assert_eq!(defaults.processes, None);
        assert_eq!(defaults.fleet_shards, None);
        assert!(defaults.bench_shards.is_empty());
        assert!(!defaults.fleet_sweep);
    }

    #[test]
    fn campaign_cli_rejects_bad_fleet_flags() {
        assert!(
            parse_campaign(&["--processes", "24"]).is_err(),
            "needs fleet preset"
        );
        let err = parse_campaign(&["--preset", "fleet", "--processes", "0"]).unwrap_err();
        assert!(
            err.0.contains("--processes") && err.0.contains("at least 1"),
            "names the flag and the range: {err}"
        );
        assert!(parse_campaign(&["--preset", "fleet", "--processes", "many"]).is_err());
        let err = parse_campaign(&["--preset", "fleet", "--fleet-shards", "0"]).unwrap_err();
        assert!(
            err.0.contains("--fleet-shards") && err.0.contains("at least 1"),
            "names the flag and the range: {err}"
        );
        assert!(parse_campaign(&["--preset", "fleet", "--fleet-shards", "many"]).is_err());
        assert!(parse_campaign(&["--preset", "fleet", "--bench-shards", "1,0"]).is_err());
        assert!(
            parse_campaign(&["--fleet-shards", "2"]).is_err(),
            "fleet-only flag"
        );
        assert!(
            parse_campaign(&["--bench-shards", "1,2"]).is_err(),
            "fleet-only flag"
        );
        assert!(
            parse_campaign(&["--fleet-sweep"]).is_err(),
            "fleet-only flag"
        );
        assert!(
            parse_campaign(&["--preset", "fleet", "--workloads", "tar"]).is_err(),
            "fleet fixes the churn family"
        );
        assert!(
            parse_campaign(&["--preset", "fleet", "--sampling", "0.5"]).is_err(),
            "the fleet rate is the preset's"
        );
    }

    #[test]
    fn fleet_campaign_runs_end_to_end() {
        let cli = parse_campaign(&[
            "--preset",
            "fleet",
            "--processes",
            "12",
            "--requests",
            "48",
            "--threads",
            "2",
        ])
        .unwrap();
        let (report, ok) = cli.execute().unwrap();
        assert!(ok, "fleet invariant holds:\n{report}");
        assert!(
            report.contains("phase A (shared-machine fleet)"),
            "{report}"
        );
        assert!(
            report.contains(
                "fleet invariant (safemem: zero false positives across 12 processes): OK"
            ),
            "{report}"
        );
    }

    #[test]
    fn sharded_fleet_campaign_reports_shard_scaling_and_the_sweep() {
        let dir = std::env::temp_dir().join("safemem-cli-shard-test");
        std::fs::create_dir_all(&dir).unwrap();
        let json_path = dir.join("bench.json");
        let cli = parse_campaign(&[
            "--preset",
            "fleet",
            "--processes",
            "12",
            "--requests",
            "48",
            "--threads",
            "2",
            "--fleet-shards",
            "4",
            "--bench-shards",
            "1,2,4",
            "--fleet-sweep",
            "--bench-json",
            json_path.to_str().unwrap(),
        ])
        .unwrap();
        let (report, ok) = cli.execute().unwrap();
        assert!(ok, "fleet + sweep invariants hold:\n{report}");
        assert!(report.contains("shard scaling: 2 shards"), "{report}");
        assert!(
            report.contains("fleet sweep: sampling rate x fleet size"),
            "{report}"
        );
        assert!(
            report.contains("zero false positives and 6sigma band at every grid point): OK"),
            "{report}"
        );
        let json = std::fs::read_to_string(&json_path).unwrap();
        assert!(json.contains("\"shard_runs\": ["), "{json}");
        assert!(json.contains("\"fleet_sweep\": {"), "{json}");
        assert!(json.ends_with("  }\n}\n"), "{json}");
        std::fs::remove_file(json_path).ok();
    }

    #[test]
    fn campaign_scorecard_is_identical_across_thread_counts() {
        let strip_execution = |report: &str| {
            report
                .split("execution:")
                .next()
                .expect("report has a scorecard part")
                .to_string()
        };
        let run = |threads: &str| {
            let cli = parse_campaign(&[
                "--preset",
                "harsh",
                "--seeds",
                "2",
                "--workloads",
                "tar",
                "--requests",
                "24",
                "--threads",
                threads,
            ])
            .unwrap();
            let (report, ok) = cli.execute().unwrap();
            assert!(ok, "harsh invariant holds:\n{report}");
            strip_execution(&report)
        };
        assert_eq!(run("1"), run("3"));
    }

    #[test]
    fn record_and_replay_roundtrip() {
        let dir = std::env::temp_dir().join("safemem-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gzip.trace");
        let path_str = path.to_str().unwrap().to_string();

        // Record a buggy gzip run under the baseline.
        let record = parse(&[
            "--app",
            "gzip",
            "--tool",
            "none",
            "--input",
            "buggy",
            "--requests",
            "6",
            "--trace-out",
            &path_str,
        ])
        .unwrap();
        let (base_result, _) = record.execute().unwrap();
        assert!(base_result.reports.is_empty(), "baseline sees nothing");

        // Replay under SafeMem: the recorded overflow is caught.
        let replay = parse(&["--replay", &path_str, "--tool", "safemem-mc"]).unwrap();
        let (result, _) = replay.execute().unwrap();
        assert!(result.corruption_detected(), "{:?}", result.reports);
        std::fs::remove_file(path).ok();
    }
}
