//! A marker-trait stand-in for `serde`, vendored because the build
//! environment has no crates registry.
//!
//! The workspace's `serde` feature promises that its data-structure types
//! *implement* `Serialize`/`Deserialize` (see `tests/extensions.rs`); no
//! code in the repo actually serialises anything yet. This shim keeps that
//! contract checkable offline: the traits exist, the derives exist, and the
//! `#[cfg_attr(feature = "serde", derive(serde::Serialize, ...))]`
//! annotations compile — so the moment a real serializer is needed, only
//! this vendor crate has to be replaced with upstream serde, not the
//! annotations.
//!
//! The traits are deliberately empty: there is no data format to drive them
//! and no `Serializer`/`Deserializer` machinery here.

/// A type that can be serialized.
pub trait Serialize {}

/// A type that can be deserialized with lifetime `'de`.
pub trait Deserialize<'de>: Sized {}

/// Deserialization-related items, mirroring `serde::de`.
pub mod de {
    /// A type deserializable from any lifetime, i.e. owning its data.
    pub trait DeserializeOwned: for<'de> super::Deserialize<'de> {}

    impl<T: for<'de> super::Deserialize<'de>> DeserializeOwned for T {}
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_for_primitives {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_for_primitives!(
    bool, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, char, String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}

#[cfg(test)]
mod tests {
    #[test]
    fn owned_primitives_satisfy_deserialize_owned() {
        fn check<T: crate::Serialize + crate::de::DeserializeOwned>() {}
        check::<u64>();
        check::<Vec<u8>>();
        check::<Option<String>>();
    }
}
