//! End-to-end exercise of the `proptest!` macro surface this shim provides,
//! mirroring how the workspace's test files use it.

use proptest::prelude::*;

fn small_vecs() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..16, 1..10)
}

proptest! {
    #[test]
    fn typed_params_draw_full_domain(x: u64, flag in any::<bool>()) {
        // x is an arbitrary u64; nothing to constrain beyond type checks.
        let _ = flag;
        prop_assert_eq!(x.wrapping_add(0), x);
    }

    #[test]
    fn range_and_tuple_params(a in 1u64..100, (lo, hi) in (0u32..50, 50u32..100)) {
        prop_assert!((1..100).contains(&a));
        prop_assert!(lo < hi, "tuple halves ordered: {} vs {}", lo, hi);
    }

    #[test]
    fn assume_retries(a in 0u8..8, b in 0u8..8) {
        prop_assume!(a != b);
        prop_assert!(a != b);
    }

    #[test]
    fn oneof_and_map_cover_arms(v in prop_oneof![
        Just(0usize),
        (1usize..4).prop_map(|x| x * 10),
    ]) {
        prop_assert!(v == 0 || (10..40).contains(&v));
    }

    #[test]
    fn collection_strategies_work(v in small_vecs(), s in proptest::collection::btree_set(0u64..64, 1..5)) {
        prop_assert!(!v.is_empty() && v.len() < 10);
        prop_assert!(!s.is_empty() && s.len() < 5);
        prop_assert!(s.iter().all(|&x| x < 64));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(17))]

    #[test]
    fn config_case_count_is_honoured(_x in 0u8..4) {
        // Counting happens via the outer static below.
        use std::sync::atomic::{AtomicU32, Ordering};
        static CASES: AtomicU32 = AtomicU32::new(0);
        let n = CASES.fetch_add(1, Ordering::SeqCst) + 1;
        prop_assert!(n <= 17, "ran more cases than configured: {}", n);
    }
}

#[test]
fn same_property_generates_identical_streams() {
    use proptest::strategy::Strategy;
    use proptest::test_runner::{ProptestConfig, TestRunner};
    let collect = |name: &'static str| {
        let mut out = Vec::new();
        TestRunner::new(ProptestConfig::with_cases(12), name).run(|rng| {
            out.push((0u64..1_000_000).generate(rng));
            Ok(())
        });
        out
    };
    assert_eq!(collect("stream"), collect("stream"));
    assert_ne!(
        collect("stream"),
        collect("other"),
        "name perturbs the stream"
    );
}
