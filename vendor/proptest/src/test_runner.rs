//! Deterministic case runner: configuration, per-case RNG, and failure
//! plumbing.

/// Runner configuration. Only the knobs the workspace uses.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
    /// Total `prop_assume!` rejections tolerated before the run aborts.
    pub max_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Smaller than upstream's 256: the workspace's properties loop over
        // exhaustive sub-spaces inside each case, so case count buys
        // diversity of the random part only.
        ProptestConfig {
            cases: 64,
            max_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// How a single case ended, when it did not succeed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the runner draws a fresh case.
    Reject,
    /// A `prop_assert*!` failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Appends the generated inputs to a failure message (no-op for
    /// rejections). Used by the `proptest!` expansion.
    #[must_use]
    pub fn with_inputs(self, inputs: &[String]) -> Self {
        match self {
            TestCaseError::Reject => TestCaseError::Reject,
            TestCaseError::Fail(msg) => {
                TestCaseError::Fail(format!("{msg}\ninputs:\n  {}", inputs.join("\n  ")))
            }
        }
    }
}

/// The per-case random source handed to strategies: SplitMix64, seeded
/// deterministically by the runner.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one case.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Drives one property: derives case seeds, counts rejections, panics with
/// a reproducible report on failure.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
    base_seed: u64,
}

/// FNV-1a, the seed's only input besides the case counter: stable across
/// runs, platforms, and re-orderings of other tests.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl TestRunner {
    /// Creates a runner for the named property (name is typically
    /// `module_path!() :: test_name`).
    #[must_use]
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        let base_seed = fnv1a(name.as_bytes());
        TestRunner {
            config,
            name,
            base_seed,
        }
    }

    /// Runs the property until `config.cases` cases succeed.
    ///
    /// # Panics
    ///
    /// Panics when a case fails or the rejection budget is exhausted.
    pub fn run<F>(&mut self, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut passed = 0u32;
        let mut rejects = 0u32;
        let mut stream = 0u64;
        while passed < self.config.cases {
            // Every attempt (pass or reject) advances the stream, so the
            // seed of case N is independent of how many rejections earlier
            // cases took -- but still a pure function of (name, attempt#).
            let seed = self.base_seed ^ stream.wrapping_mul(0x2545_F491_4F6C_DD1D);
            stream += 1;
            let mut rng = TestRng::new(seed);
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejects += 1;
                    assert!(
                        rejects <= self.config.max_rejects,
                        "proptest {}: too many prop_assume! rejections ({rejects})",
                        self.name,
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest {} failed at case {passed} (seed {seed:#018x}):\n{msg}",
                        self.name,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_is_in_bounds_and_covers() {
        let mut rng = TestRng::new(1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn runner_is_deterministic() {
        let mut first = Vec::new();
        let mut runner = TestRunner::new(ProptestConfig::with_cases(10), "det");
        runner.run(|rng| {
            first.push(rng.next_u64());
            Ok(())
        });
        let mut second = Vec::new();
        let mut runner = TestRunner::new(ProptestConfig::with_cases(10), "det");
        runner.run(|rng| {
            second.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(first, second);
        assert_eq!(first.len(), 10);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failure_panics_with_context() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(4), "boom");
        runner.run(|_| Err(TestCaseError::fail("nope")));
    }

    #[test]
    fn rejections_retry_with_fresh_seeds() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(8), "retry");
        let mut attempts = 0;
        runner.run(|rng| {
            attempts += 1;
            if rng.below(2) == 0 {
                return Err(TestCaseError::Reject);
            }
            Ok(())
        });
        assert!(attempts >= 8);
    }
}
