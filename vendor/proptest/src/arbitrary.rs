//! `any::<T>()` and the `Arbitrary` trait for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::unnecessary_cast)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the whole domain of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_bool_takes_both_values() {
        let mut rng = TestRng::new(8);
        let strat = any::<bool>();
        let trues = (0..100).filter(|_| strat.generate(&mut rng)).count();
        assert!(trues > 10 && trues < 90, "{trues}");
    }

    #[test]
    fn any_u8_covers_range_edges_eventually() {
        let mut rng = TestRng::new(9);
        let strat = any::<u8>();
        let mut min = u8::MAX;
        let mut max = 0u8;
        for _ in 0..4000 {
            let v = strat.generate(&mut rng);
            min = min.min(v);
            max = max.max(v);
        }
        assert!(min < 8 && max > 247, "min={min} max={max}");
    }
}
