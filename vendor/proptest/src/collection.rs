//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::Range;

/// A length specification: either exact (`8`) or half-open (`1..200`).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl SizeRange {
    fn sample(self, rng: &mut TestRng) -> usize {
        debug_assert!(self.min < self.max_exclusive);
        self.min + rng.below((self.max_exclusive - self.min) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max_exclusive: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        SizeRange {
            min: range.start,
            max_exclusive: range.end,
        }
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone, Copy)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`btree_set`].
#[derive(Debug, Clone, Copy)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        // Duplicates shrink the set, so bound the attempts: if the element
        // domain is smaller than the requested size we return what we got
        // rather than spin (upstream rejects instead; none of our tests
        // request more elements than the domain holds).
        let mut attempts = 0usize;
        while set.len() < target && attempts < target.saturating_mul(64).max(64) {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}

/// Generates ordered sets with `size` elements drawn from `element`.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_length_range() {
        let mut rng = TestRng::new(10);
        let strat = vec(0u8..4, 1..9);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((1..9).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn vec_exact_length() {
        let mut rng = TestRng::new(11);
        let strat = vec(0u8..3, 8);
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut rng).len(), 8);
        }
    }

    #[test]
    fn btree_set_hits_requested_size_when_domain_allows() {
        let mut rng = TestRng::new(12);
        let strat = btree_set(0u64..512, 5..6);
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut rng).len(), 5);
        }
    }
}
