//! A minimal, deterministic stand-in for the `proptest` 1.x API surface
//! used by this workspace.
//!
//! The build environment is fully offline, so the workspace vendors a small
//! property-testing engine with the same spelling as upstream proptest:
//! [`proptest!`], `prop_assert!`/`prop_assert_eq!`/`prop_assume!`,
//! [`prop_oneof!`], `any::<T>()`, integer-range strategies, `Just`,
//! `.prop_map`, and `proptest::collection::{vec, btree_set}`.
//!
//! Differences from upstream, by design:
//!
//! - **No shrinking.** A failing case reports its generated inputs and the
//!   per-case seed instead; cases are small enough here that shrinking is a
//!   nice-to-have, not a necessity.
//! - **Fully deterministic.** Case seeds derive from the test's module path
//!   and name plus the case index — never from the OS or the clock — so a
//!   failure reproduces by just re-running the test. This matches the
//!   repo-wide determinism rules (see DESIGN.md).
//! - **Strategies are generators**, not value trees: `Strategy` has one
//!   required method, `generate`.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything the test files import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests. Supports the two upstream parameter forms the
/// workspace uses: `name in strategy` and `name: Type` (via `any::<Type>()`),
/// plus an optional leading `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __runner = $crate::test_runner::TestRunner::new(
                __config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            __runner.run(|__rng| {
                let mut __inputs: ::std::vec::Vec<::std::string::String> = ::std::vec::Vec::new();
                $crate::__proptest_bind!(__rng, __inputs, $($params)*);
                let __case = ::std::panic::AssertUnwindSafe(
                    || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
                match ::std::panic::catch_unwind(__case) {
                    ::std::result::Result::Ok(__outcome) => __outcome.map_err(|__e| {
                        __e.with_inputs(&__inputs)
                    }),
                    ::std::result::Result::Err(__payload) => {
                        ::std::eprintln!(
                            "proptest case panicked with inputs:\n  {}",
                            __inputs.join("\n  "),
                        );
                        ::std::panic::resume_unwind(__payload)
                    }
                }
            });
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Binds each parameter: generates a value from its strategy and records a
/// debug rendering for failure reports.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, $inputs:ident $(,)?) => {};
    ($rng:ident, $inputs:ident, $pat:pat in $strat:expr) => {
        $crate::__proptest_bind!($rng, $inputs, $pat in $strat,);
    };
    ($rng:ident, $inputs:ident, $pat:pat in $strat:expr, $($rest:tt)*) => {
        let __value = $crate::strategy::Strategy::generate(&$strat, $rng);
        $inputs.push(::std::format!(concat!(stringify!($pat), " = {:?}"), __value));
        let $pat = __value;
        $crate::__proptest_bind!($rng, $inputs, $($rest)*);
    };
    ($rng:ident, $inputs:ident, $name:ident : $ty:ty) => {
        $crate::__proptest_bind!($rng, $inputs, $name : $ty,);
    };
    ($rng:ident, $inputs:ident, $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty =
            $crate::strategy::Strategy::generate(&$crate::arbitrary::any::<$ty>(), $rng);
        $inputs.push(::std::format!(concat!(stringify!($name), " = {:?}"), $name));
        $crate::__proptest_bind!($rng, $inputs, $($rest)*);
    };
}

/// Fails the current case (without panicking through the harness) when the
/// condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}\n  left: {:?}\n right: {:?}",
            ::std::format!($($fmt)*),
            left,
            right,
        );
    }};
}

/// Fails the current case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left,
        );
    }};
}

/// Discards the current case when the assumption does not hold; the runner
/// retries with a fresh seed (bounded by `ProptestConfig::max_rejects`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
