//! Value-generation strategies: the trait, integer ranges, `Just`, `Map`,
//! `Union` (behind `prop_oneof!`), and tuples.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest this is a plain generator (no shrink tree); it
/// is object-safe so heterogeneous strategies can share a `BoxedStrategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value, consuming randomness from `rng` only.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map {
            source: self,
            map: f,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            #[allow(clippy::unnecessary_cast, clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // Widths are computed in the unsigned domain so signed
                // ranges (and full-width unsigned ones) wrap correctly.
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                let offset = if width == 0 { rng.next_u64() } else { rng.below(width) };
                (self.start as u64).wrapping_add(offset) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Always generates a clone of the given value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.map)(self.source.generate(rng))
    }
}

/// Uniform choice between strategies of the same value type; built by
/// `prop_oneof!`.
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates the union.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident : $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                // Left to right, so a tuple's stream layout is stable.
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(3);
        for _ in 0..1000 {
            let v = (10u8..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let s = (-8i64..8).generate(&mut rng);
            assert!((-8..8).contains(&s));
        }
    }

    #[test]
    fn just_and_map_compose() {
        let mut rng = TestRng::new(4);
        let strat = Just(21u32).prop_map(|x| x * 2);
        assert_eq!(strat.generate(&mut rng), 42);
    }

    #[test]
    fn union_picks_every_arm() {
        let mut rng = TestRng::new(5);
        let strat = Union::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::new(6);
        let (a, b, c) = (Just(1u8), 0u16..4, Just("x")).generate(&mut rng);
        assert_eq!(a, 1);
        assert!(b < 4);
        assert_eq!(c, "x");
    }
}
