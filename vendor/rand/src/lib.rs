//! A minimal, deterministic stand-in for the `rand` 0.8 API surface used by
//! this workspace.
//!
//! The build environment is fully offline (no crates registry), so the
//! workspace vendors the few pieces it needs: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over integer
//! ranges. The generator is xoshiro256** seeded through SplitMix64 — fast,
//! well mixed, and *stable across builds*, which matters more here than
//! matching upstream's exact stream: every workload, campaign, and test in
//! the repo derives its behaviour from seeds fed through this crate, so the
//! stream is part of the repo's determinism contract.

use std::ops::Range;

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] as in upstream `rand`.
pub trait Rng: RngCore + Sized {
    /// Returns a value uniformly distributed over `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 uniform mantissa bits, as upstream does.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range that can produce a uniform sample; implemented for half-open
/// integer ranges, the only form this workspace uses. The sampled type is
/// an associated type so integer-literal inference flows through
/// [`Rng::gen_range`] the way it does with upstream rand.
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            #[allow(clippy::unnecessary_cast)]
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                if width == 0 {
                    // Only reachable for 0..2^64 on u64: any value works.
                    return rng.next_u64() as $t;
                }
                // Widening multiply keeps the modulo bias negligible for the
                // range sizes the simulator uses.
                let hi = ((u128::from(rng.next_u64()) * u128::from(width)) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            #[allow(clippy::unnecessary_cast)]
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as $u).wrapping_sub(self.start as $u);
                let hi = ((u128::from(rng.next_u64()) * u128::from(width as u64)) >> 64) as $u;
                self.start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// (the same construction upstream documents).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: used to expand small seeds into full generator state.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    ///
    /// Deliberately *not* upstream's ChaCha12 — this shim optimises for
    /// simplicity and a stable stream, not cryptographic strength.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    /// Upstream's small generator; here the same engine as [`StdRng`].
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should diverge: {same} collisions");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&b| b), "all buckets hit: {seen:?}");
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(13);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
