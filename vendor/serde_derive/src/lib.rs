//! Derive-macro stand-ins for `serde_derive`, vendored for the offline
//! build. Each derive emits an *empty* marker-trait impl for the annotated
//! type (the vendored `serde` traits have no methods). Parsing is done by
//! hand on the raw token stream — no `syn`/`quote`, since those also live
//! in the unreachable registry.
//!
//! Limitation: generic types get no impl (emitting correctly-bounded
//! generic impls needs a real parser). Every type the workspace derives on
//! is concrete, and the `tests/extensions.rs` contract only checks concrete
//! types.

use proc_macro::{TokenStream, TokenTree};

/// Finds the name of the `struct`/`enum`/`union` being derived and whether
/// it has a generic parameter list.
fn type_name(input: &TokenStream) -> Option<(String, bool)> {
    let tokens: Vec<TokenTree> = input.clone().into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        if let TokenTree::Ident(ident) = &tokens[i] {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                if let Some(TokenTree::Ident(name)) = tokens.get(i + 1) {
                    let generic = matches!(
                        tokens.get(i + 2),
                        Some(TokenTree::Punct(p)) if p.as_char() == '<'
                    );
                    return Some((name.to_string(), generic));
                }
                return None;
            }
        }
        i += 1;
    }
    None
}

/// Derives the vendored `serde::Serialize` marker trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match type_name(&input) {
        Some((name, false)) => format!("impl ::serde::Serialize for {name} {{}}")
            .parse()
            .expect("valid impl tokens"),
        // Generic or unparseable: emit nothing rather than a wrong impl.
        _ => TokenStream::new(),
    }
}

/// Derives the vendored `serde::Deserialize` marker trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match type_name(&input) {
        Some((name, false)) => format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
            .parse()
            .expect("valid impl tokens"),
        _ => TokenStream::new(),
    }
}
