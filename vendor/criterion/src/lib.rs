//! A minimal, offline stand-in for the `criterion` 0.5 API surface used by
//! `crates/bench/benches/micro.rs`.
//!
//! The build environment has no crates registry, so the workspace vendors
//! just enough of criterion to compile and *run* the benchmarks:
//! `bench_function`, `Bencher::iter`/`iter_custom`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros. There is no statistical
//! engine — each benchmark runs a fixed warm-up then a timed batch and
//! prints mean time per iteration. Numbers are indicative, not
//! publication-grade; the point is that `cargo bench` works offline and the
//! bench code stays upstream-compatible.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Iterations used to size the timed batch for fast (sub-microsecond)
/// benchmarks, once a single probe iteration has shown they are fast.
const WARMUP_ITERS: u64 = 1_000;
/// A probe iteration at least this slow skips the batched warm-up entirely —
/// heavyweight benchmarks (whole campaign matrices) would otherwise spend
/// minutes warming up.
const HEAVY_PROBE: Duration = Duration::from_millis(1);
/// Minimum wall time the timed batch aims for.
const TARGET_BATCH: Duration = Duration::from_millis(200);

/// One finished benchmark: its name and measured mean time per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// The name passed to [`Criterion::bench_function`].
    pub name: String,
    /// Mean wall time per iteration over the timed batch, in nanoseconds.
    pub mean_ns: f64,
    /// Iterations in the timed batch.
    pub iters: u64,
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Results of every benchmark run so far, in execution order. Custom
    /// bench mains use this to emit machine-readable records (see
    /// [`Criterion::write_json`]).
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Writes the collected results as a JSON record:
    /// `{"bench": <label>, "results": [{"name", "mean_ns", "iters"}, ...]}`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying file-write error.
    pub fn write_json(&self, label: &str, path: &str) -> std::io::Result<()> {
        let mut body = String::new();
        body.push_str(&format!(
            "{{\n  \"bench\": \"{label}\",\n  \"results\": [\n"
        ));
        for (i, r) in self.results.iter().enumerate() {
            let sep = if i + 1 < self.results.len() { "," } else { "" };
            body.push_str(&format!(
                "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"iters\": {}}}{sep}\n",
                r.name, r.mean_ns, r.iters
            ));
        }
        body.push_str("  ]\n}\n");
        std::fs::write(path, body)
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Single-iteration probe: cheap for micro benches, and keeps heavy
        // benches (hundreds of milliseconds per iteration) from running a
        // thousand warm-up iterations.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed < HEAVY_PROBE {
            // Fast benchmark: a batched warm-up gives a stable estimate that
            // one timer-resolution-bound iteration cannot.
            b.iters = WARMUP_ITERS;
            b.elapsed = Duration::ZERO;
            f(&mut b);
        }
        let per_iter = b.elapsed.as_nanos().max(1) / u128::from(b.iters);
        let timed_iters = (TARGET_BATCH.as_nanos() / per_iter.max(1)).clamp(1, 10_000_000) as u64;
        b.iters = timed_iters;
        b.elapsed = Duration::ZERO;
        f(&mut b);
        let mean_ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
        println!("{name:<50} {:>12} iters  {mean_ns:>14.1} ns/iter", b.iters);
        self.results.push(BenchResult {
            name: name.to_string(),
            mean_ns,
            iters: b.iters,
        });
        self
    }
}

/// Hands the closure under test its iteration count.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Lets the closure time itself: it receives the iteration count and
    /// returns the elapsed wall time for that many iterations.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.elapsed = f(self.iters);
    }
}

/// Collects benchmark functions into a runner function, mirroring
/// criterion's macro of the same name (configuration forms unsupported).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(
            calls > WARMUP_ITERS,
            "warm-up plus timed batch ran: {calls}"
        );
    }

    #[test]
    fn iter_custom_receives_iteration_count() {
        let mut c = Criterion::default();
        let mut seen = Vec::new();
        c.bench_function("shim/custom", |b| {
            b.iter_custom(|iters| {
                seen.push(iters);
                Duration::from_micros(iters)
            })
        });
        assert_eq!(seen.len(), 3, "probe, warm-up, and timed batch");
        assert_eq!(seen[0], 1, "single-iteration probe");
        assert!(seen[1..].iter().all(|&n| n >= 10));
    }
}
