//! Workspace-level property tests: SafeMem must be *transparent* to correct
//! programs (no false corruption reports, bit-exact data) and its heap must
//! behave identically to the baseline's from the program's point of view.

use proptest::prelude::*;
use safemem::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Alloc {
        site: u64,
        size: u64,
    },
    /// Free the i-th oldest live buffer.
    Free(usize),
    /// Write a pattern somewhere strictly inside the i-th live buffer.
    Write {
        which: usize,
        offset_permille: u16,
        len_permille: u16,
    },
    /// Read back and check a prefix of the i-th live buffer.
    Check(usize),
    Compute(u64),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            ((1u64..8), (1u64..2000)).prop_map(|(site, size)| Op::Alloc { site, size }),
            (0usize..32).prop_map(Op::Free),
            ((0usize..32), (0u16..1000), (1u16..1000)).prop_map(
                |(which, offset_permille, len_permille)| Op::Write {
                    which,
                    offset_permille,
                    len_permille
                }
            ),
            (0usize..32).prop_map(Op::Check),
            (1_000u64..100_000).prop_map(Op::Compute),
        ],
        1..60,
    )
}

fn execute(tool: &mut dyn MemTool, os: &mut Os, ops: &[Op]) -> Vec<(u64, Vec<u8>)> {
    let mut live: Vec<(u64, u64, u8)> = Vec::new(); // (addr, size, fill)
    let mut fill = 0u8;
    for op in ops {
        match *op {
            Op::Alloc { site, size } => {
                let stack = CallStack::new(&[0x400_000, site]);
                let addr = tool.malloc(os, size, &stack);
                fill = fill.wrapping_add(1);
                tool.write(os, addr, &vec![fill; size as usize]);
                live.push((addr, size, fill));
            }
            Op::Free(i) => {
                if live.is_empty() {
                    continue;
                }
                let (addr, _, _) = live.remove(i % live.len());
                tool.free(os, addr);
            }
            Op::Write {
                which,
                offset_permille,
                len_permille,
            } => {
                if live.is_empty() {
                    continue;
                }
                let idx = which % live.len();
                let (addr, size, _) = live[idx];
                let offset = u64::from(offset_permille) * size / 1000;
                let len = (u64::from(len_permille) * (size - offset) / 1000).max(1);
                fill = fill.wrapping_add(1);
                tool.write(os, addr + offset, &vec![fill; len as usize]);
                // Restore a uniform fill so Check stays simple.
                tool.write(os, addr, &vec![fill; size as usize]);
                live[idx].2 = fill;
            }
            Op::Check(i) => {
                if live.is_empty() {
                    continue;
                }
                let (addr, size, expected) = live[i % live.len()];
                let mut buf = vec![0u8; size as usize];
                tool.read(os, addr, &mut buf);
                assert!(buf.iter().all(|&b| b == expected), "data corrupted");
            }
            Op::Compute(cycles) => tool.compute(os, cycles, cycles / 4),
        }
    }
    live.iter()
        .map(|&(addr, size, fill)| (addr, vec![fill; size as usize]))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A correct random program under full SafeMem: zero corruption
    /// reports, zero hardware panics, bit-exact data.
    #[test]
    fn prop_safemem_transparent_to_correct_programs(ops in ops()) {
        let mut os = Os::with_defaults(1 << 25);
        let mut tool = SafeMem::builder().build(&mut os);
        let live = execute(&mut tool, &mut os, &ops);
        for (addr, expected) in live {
            let mut buf = vec![0u8; expected.len()];
            tool.read(&mut os, addr, &mut buf);
            prop_assert_eq!(buf, expected);
        }
        prop_assert!(
            !tool.all_reports().iter().any(|r| r.is_corruption()),
            "false corruption report: {:?}",
            tool.all_reports()
        );
        prop_assert_eq!(os.stats().hardware_panics, 0);
    }

    /// The same program under the Purify model is also clean (the two tools
    /// agree on correct programs).
    #[test]
    fn prop_purify_agrees_on_correct_programs(ops in ops()) {
        let mut os = Os::with_defaults(1 << 25);
        let mut tool = Purify::new();
        let _ = execute(&mut tool, &mut os, &ops);
        prop_assert!(
            !tool.reports().iter().any(|r| r.is_corruption()),
            "false report: {:?}",
            tool.reports()
        );
    }

    /// SafeMem's overhead is essentially never negative. (A small credit is
    /// tolerated: SafeMem's cache-line-aligned layout can genuinely improve
    /// cache behaviour over the baseline's 16-byte alignment, so a run
    /// dominated by accesses to small unaligned buffers may come out
    /// marginally ahead before the monitoring costs are added.)
    #[test]
    fn prop_overhead_is_essentially_nonnegative(ops in ops()) {
        let mut os_a = Os::with_defaults(1 << 25);
        let mut base = NullTool::new();
        execute(&mut base, &mut os_a, &ops);

        let mut os_b = Os::with_defaults(1 << 25);
        let mut tool = SafeMem::builder().build(&mut os_b);
        execute(&mut tool, &mut os_b, &ops);

        prop_assert!(os_b.cpu_cycles() as f64 >= os_a.cpu_cycles() as f64 * 0.95);
    }

    /// Overflows of every size ≥ the line-rounding slack are caught, at any
    /// buffer size.
    #[test]
    fn prop_overflow_beyond_rounding_always_caught(
        size in 1u64..3000,
        overflow in 1u64..64,
    ) {
        let mut os = Os::with_defaults(1 << 24);
        let mut tool = SafeMem::builder().leak_detection(false).build(&mut os);
        let stack = CallStack::new(&[0x9]);
        let addr = tool.malloc(&mut os, size, &stack);
        let rounded = size.div_ceil(64) * 64;
        // First byte past the rounded payload is in the watched pad.
        tool.write(&mut os, addr + rounded + overflow - 1, &[0xEE]);
        prop_assert!(
            tool.all_reports().iter().any(|r| r.is_corruption()),
            "overflow at rounded+{overflow} missed for size {size}"
        );
    }
}
