//! The full tool × application matrix, at reduced scale: every tool must
//! run every workload to completion (both input modes) without panicking,
//! and cross-tool invariants must hold on every cell.

use safemem::baselines::Memcheck;
use safemem::prelude::*;
use safemem_os::STATIC_BASE;

fn run_cell(
    tool_name: &str,
    app: &dyn Workload,
    input: InputMode,
) -> safemem::workloads::RunResult {
    let mut os = Os::with_defaults(1 << 26);
    let cfg = RunConfig {
        input,
        requests: Some((app.default_requests() / 6).max(20)),
        ..RunConfig::default()
    };
    match tool_name {
        "none" => {
            let mut tool = NullTool::new();
            run_under(app, &mut os, &mut tool, &cfg)
        }
        "safemem" => {
            let mut tool = SafeMem::builder().build(&mut os);
            run_under(app, &mut os, &mut tool, &cfg)
        }
        "purify" => {
            let mut tool = Purify::new();
            tool.add_root_range(STATIC_BASE, 4096);
            run_under(app, &mut os, &mut tool, &cfg)
        }
        "memcheck" => {
            let mut tool = Memcheck::new();
            tool.add_root_range(STATIC_BASE, 4096);
            run_under(app, &mut os, &mut tool, &cfg)
        }
        "pageguard" => {
            let mut tool = PageGuard::new();
            run_under(app, &mut os, &mut tool, &cfg)
        }
        other => panic!("unknown tool {other}"),
    }
}

#[test]
fn every_tool_completes_every_app() {
    for app in all_workloads() {
        for tool in ["none", "safemem", "purify", "memcheck", "pageguard"] {
            for input in [InputMode::Normal, InputMode::Buggy] {
                let result = run_cell(tool, app.as_ref(), input);
                assert!(
                    result.cpu_cycles > 0,
                    "{tool}/{}/{input:?}",
                    app.spec().name
                );
            }
        }
    }
}

#[test]
fn allocation_counts_agree_across_tools_on_normal_input() {
    // Same seed + same request count ⇒ identical op sequences, so every
    // tool's allocator must see the same number of allocations.
    for app in all_workloads() {
        let reference = run_cell("none", app.as_ref(), InputMode::Normal)
            .heap_stats
            .allocs;
        for tool in ["safemem", "purify", "pageguard"] {
            let allocs = run_cell(tool, app.as_ref(), InputMode::Normal)
                .heap_stats
                .allocs;
            assert_eq!(allocs, reference, "{tool} on {}", app.spec().name);
        }
    }
}

#[test]
fn baseline_is_always_cheapest_and_purify_always_heaviest() {
    for app in all_workloads() {
        let name = app.spec().name;
        let base = run_cell("none", app.as_ref(), InputMode::Normal).cpu_cycles;
        let safemem = run_cell("safemem", app.as_ref(), InputMode::Normal).cpu_cycles;
        let purify = run_cell("purify", app.as_ref(), InputMode::Normal).cpu_cycles;
        assert!(base <= safemem, "{name}: baseline ≤ safemem");
        assert!(safemem < purify, "{name}: safemem < purify");
    }
}

#[test]
fn normal_inputs_are_corruption_clean_under_every_checker() {
    for app in all_workloads() {
        for tool in ["safemem", "purify", "memcheck", "pageguard"] {
            let result = run_cell(tool, app.as_ref(), InputMode::Normal);
            assert!(
                !result.corruption_detected(),
                "{tool} false positive on {}: {:?}",
                app.spec().name,
                result.reports
            );
        }
    }
}

#[test]
fn corruption_bugs_found_by_byte_granular_checkers_too() {
    // Purify and Memcheck check at byte granularity, so they catch the
    // corruption bugs SafeMem catches (Table 3's comparison premise).
    for name in ["gzip", "tar", "squid2"] {
        let app = workload_by_name(name).unwrap();
        for tool in ["safemem", "purify", "memcheck"] {
            let result = run_cell(tool, app.as_ref(), InputMode::Buggy);
            assert!(
                result.corruption_detected(),
                "{tool} missed the {name} bug: {:?}",
                result.reports
            );
        }
    }
}
