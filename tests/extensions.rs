//! Integration tests for the features the paper proposes as extensions or
//! future work, and for the additional baselines.

use safemem::baselines::Memcheck;
use safemem::prelude::*;
use safemem_os::STATIC_BASE;

/// §4's uninitialised-read extension, end to end: a workload-sized scenario
/// where a parser reads a field that was never written.
#[test]
fn uninit_read_extension_end_to_end() {
    let mut os = Os::with_defaults(1 << 24);
    let mut tool = SafeMem::builder()
        .leak_detection(false)
        .uninit_detection(true)
        .build(&mut os);
    let stack = CallStack::new(&[0x1]);

    // A "message" buffer where only the header is filled in...
    let msg = tool.malloc(&mut os, 256, &stack);
    tool.write(&mut os, msg, &[0xAB; 64]);
    // ...reading the header is fine (the first write disarmed those lines)...
    let mut hdr = [0u8; 64];
    tool.read(&mut os, msg, &mut hdr);
    assert_eq!(hdr, [0xAB; 64]);
    let before = tool.all_reports().len();
    // ...but reading the never-written body is the bug.
    let mut body = [0u8; 8];
    tool.read(&mut os, msg + 128, &mut body);
    let reports = tool.all_reports();
    assert!(reports.len() > before);
    assert!(
        reports
            .iter()
            .any(|r| matches!(r, BugReport::UninitRead { buffer_addr, .. } if *buffer_addr == msg)),
        "{reports:?}"
    );
}

/// Wider paddings (§4: "could easily use longer paddings") catch overflows
/// that skip past a single guard line.
#[test]
fn wide_paddings_catch_skipping_overflows() {
    let skip = 130u64; // lands beyond a 64-byte pad, inside a 256-byte one

    let mut os = Os::with_defaults(1 << 24);
    let mut narrow = SafeMem::builder()
        .leak_detection(false)
        .pad_lines(1)
        .build(&mut os);
    let stack = CallStack::new(&[0x2]);
    let a = narrow.malloc(&mut os, 64, &stack);
    narrow.write(&mut os, a + 64 + skip, &[1]);
    assert!(
        !narrow.all_reports().iter().any(|r| r.is_corruption()),
        "a 1-line pad must miss a {skip}-byte skip"
    );

    let mut os = Os::with_defaults(1 << 24);
    let mut wide = SafeMem::builder()
        .leak_detection(false)
        .pad_lines(4)
        .build(&mut os);
    let b = wide.malloc(&mut os, 64, &stack);
    wide.write(&mut os, b + 64 + skip, &[1]);
    assert!(
        wide.all_reports().iter().any(|r| r.is_corruption()),
        "a 4-line pad must catch it: {:?}",
        wide.all_reports()
    );
}

/// The Memcheck baseline detects the corruption apps' bugs too, at an even
/// higher cost than Purify's on low-density workloads.
#[test]
fn memcheck_detects_and_costs_more() {
    let gzip = workload_by_name("gzip").unwrap();
    let cfg = RunConfig {
        input: InputMode::Buggy,
        requests: Some(12),
        ..RunConfig::default()
    };
    let mut os = Os::with_defaults(1 << 26);
    let mut tool = Memcheck::new();
    tool.add_root_range(STATIC_BASE, 4096);
    let result = run_under(gzip.as_ref(), &mut os, &mut tool, &cfg);
    assert!(result.corruption_detected(), "{:?}", result.reports);

    // Cost comparison on the low-density ypserv1 (where interpretation
    // dominates): memcheck must exceed purify.
    let ypserv = workload_by_name("ypserv1").unwrap();
    let cfg = RunConfig {
        requests: Some(60),
        ..RunConfig::default()
    };

    let mut os = Os::with_defaults(1 << 26);
    let mut null = NullTool::new();
    let base = run_under(ypserv.as_ref(), &mut os, &mut null, &cfg);

    let mut os = Os::with_defaults(1 << 26);
    let mut purify = Purify::new();
    let p = run_under(ypserv.as_ref(), &mut os, &mut purify, &cfg);

    let mut os = Os::with_defaults(1 << 26);
    let mut memcheck = Memcheck::new();
    let m = run_under(ypserv.as_ref(), &mut os, &mut memcheck, &cfg);

    let px = p.cpu_cycles as f64 / base.cpu_cycles as f64;
    let mx = m.cpu_cycles as f64 / base.cpu_cycles as f64;
    assert!(
        mx > px,
        "memcheck {mx:.1}x should exceed purify {px:.1}x here"
    );
    assert!(mx > 10.0);
}

/// The swap-aware watch policy sustains leak detection when the pinning
/// policy would refuse to watch (all memory pinned).
#[test]
fn swap_aware_leak_detection_under_pressure() {
    let config = OsConfig {
        phys_bytes: 96 * 4096,
        swap_policy: SwapPolicy::SwapAware,
        ..OsConfig::default()
    };
    let mut os = Os::new(config);
    let mut tool = SafeMem::builder()
        .corruption_detection(false)
        .leak_config(LeakConfig {
            check_period: 50_000,
            warmup: 0,
            sleak_stable_threshold: 50_000,
            report_after: 3_000_000,
            ..LeakConfig::default()
        })
        .build(&mut os);
    let stack = CallStack::new(&[0x3]);

    // A leak plus enough live data to outgrow physical memory.
    let leaked = tool.malloc(&mut os, 64, &stack);
    let ballast: Vec<u64> = (0..128)
        .map(|_| tool.malloc(&mut os, 4096, &CallStack::new(&[0x4])))
        .collect();
    for &b in &ballast {
        tool.write(&mut os, b, &[1u8; 4096]);
    }
    for _ in 0..200 {
        let t = tool.malloc(&mut os, 64, &stack);
        os.compute(100_000);
        tool.free(&mut os, t);
    }
    os.compute(6_000_000);
    tool.finish(&mut os);

    assert!(
        os.vm().stats().swap_outs > 0,
        "memory pressure must be real"
    );
    assert!(
        tool.all_reports()
            .iter()
            .any(|r| matches!(r, BugReport::Leak { addr, .. } if *addr == leaked)),
        "{:?}",
        tool.all_reports()
    );
}

/// The breakpoint facility freezes the first corruption across a whole
/// workload run.
#[test]
fn breakpoint_set_on_workload_bug() {
    let tar = workload_by_name("tar").unwrap();
    let mut os = Os::with_defaults(1 << 26);
    let mut tool = SafeMem::builder().build(&mut os);
    let cfg = RunConfig {
        input: InputMode::Buggy,
        requests: Some(30),
        ..RunConfig::default()
    };
    tar.run(&mut os, &mut tool, &cfg);
    let bp = tool.breakpoint().expect("bug hit → breakpoint set");
    assert!(bp.is_corruption());
}

/// With the `serde` feature, the data-structure types implement
/// Serialize/Deserialize (guideline C-SERDE).
#[cfg(feature = "serde")]
#[test]
fn serde_impls_exist() {
    fn check<T: serde::Serialize + serde::de::DeserializeOwned>() {}
    check::<safemem::core::BugReport>();
    check::<safemem::core::GroupKey>();
    check::<safemem::core::LeakConfig>();
    check::<safemem::alloc::HeapStats>();
    check::<safemem::os::OsStats>();
    check::<safemem::os::KernelEvent>();
    check::<safemem::ecc::EccFault>();
    check::<safemem::ecc::ControllerStats>();
    check::<safemem::cache::CacheConfig>();
    check::<safemem::machine::CostModel>();
    check::<safemem::workloads::Trace>();
    check::<safemem::workloads::RunResult>();
}
