//! The headline result as an integration test: SafeMem detects all seven
//! bugs (Table 3's "Detected?" column), with false positives matching
//! Table 5, while the baseline and the dormant (normal-input) runs stay
//! silent.

use safemem::prelude::*;

fn half_scale(app: &dyn Workload) -> Option<u64> {
    Some(app.default_requests() / 2)
}

#[test]
fn safemem_detects_every_bug_in_table_1() {
    for app in all_workloads() {
        let spec = app.spec();
        let mut os = Os::with_defaults(1 << 26);
        let mut tool = SafeMem::builder().build(&mut os);
        let cfg = RunConfig {
            input: InputMode::Buggy,
            requests: half_scale(app.as_ref()),
            ..RunConfig::default()
        };
        let result = run_under(app.as_ref(), &mut os, &mut tool, &cfg);
        let truth = app.true_leak_groups();
        let detected = if spec.bug.is_leak() {
            result.true_leaks(&truth) > 0
        } else {
            result.corruption_detected()
        };
        assert!(
            detected,
            "{} bug not detected: {:?}",
            spec.name, result.reports
        );
    }
}

#[test]
fn normal_inputs_never_report_corruption() {
    for app in all_workloads() {
        let mut os = Os::with_defaults(1 << 26);
        let mut tool = SafeMem::builder().build(&mut os);
        let cfg = RunConfig {
            requests: half_scale(app.as_ref()),
            ..RunConfig::default()
        };
        let result = run_under(app.as_ref(), &mut os, &mut tool, &cfg);
        assert!(
            !result.corruption_detected(),
            "{}: corruption FP on normal input: {:?}",
            app.spec().name,
            result.reports
        );
    }
}

#[test]
fn false_positive_counts_match_table_5_shape() {
    // ECC pruning removes (nearly) all false positives; without it every
    // long-lived-but-live object is misreported.
    for app in all_workloads() {
        if !app.spec().bug.is_leak() {
            continue;
        }
        let truth = app.true_leak_groups();

        let mut os = Os::with_defaults(1 << 26);
        let mut with_pruning = SafeMem::builder().build(&mut os);
        let cfg = RunConfig {
            input: InputMode::Buggy,
            ..RunConfig::default()
        };
        let after = run_under(app.as_ref(), &mut os, &mut with_pruning, &cfg);

        let mut os = Os::with_defaults(1 << 26);
        let mut without = SafeMem::builder()
            .leak_config(LeakConfig {
                prune_with_ecc: false,
                ..LeakConfig::default()
            })
            .build(&mut os);
        let before = run_under(app.as_ref(), &mut os, &mut without, &cfg);

        let name = app.spec().name;
        assert!(
            before.false_leaks(&truth) >= 2,
            "{name}: expected several FPs without pruning, got {}",
            before.false_leaks(&truth)
        );
        assert!(
            after.false_leaks(&truth) <= 1,
            "{name}: pruning must remove almost all FPs, got {}",
            after.false_leaks(&truth)
        );
        assert!(
            after.false_leaks(&truth) < before.false_leaks(&truth),
            "{name}: pruning must strictly help"
        );
    }
}

#[test]
fn purify_also_detects_the_corruption_bugs() {
    for name in ["gzip", "tar", "squid2"] {
        let app = workload_by_name(name).unwrap();
        let mut os = Os::with_defaults(1 << 26);
        let mut tool = Purify::new();
        tool.add_root_range(safemem_os::STATIC_BASE, 4096);
        let cfg = RunConfig {
            input: InputMode::Buggy,
            requests: half_scale(app.as_ref()),
            ..RunConfig::default()
        };
        let result = run_under(app.as_ref(), &mut os, &mut tool, &cfg);
        assert!(result.corruption_detected(), "{name}: {:?}", result.reports);
    }
}

#[test]
fn safemem_is_orders_of_magnitude_cheaper_than_purify() {
    // The core Table 3 claim, as an invariant.
    let app = workload_by_name("gzip").unwrap();
    let cfg = RunConfig {
        requests: Some(15),
        ..RunConfig::default()
    };

    let mut os = Os::with_defaults(1 << 26);
    let mut null = NullTool::new();
    let base = run_under(app.as_ref(), &mut os, &mut null, &cfg);

    let mut os = Os::with_defaults(1 << 26);
    let mut sm = SafeMem::builder().build(&mut os);
    let safemem = run_under(app.as_ref(), &mut os, &mut sm, &cfg);

    let mut os = Os::with_defaults(1 << 26);
    let mut pf = Purify::new();
    let purify = run_under(app.as_ref(), &mut os, &mut pf, &cfg);

    let sm_overhead = safemem.cpu_cycles as f64 / base.cpu_cycles as f64 - 1.0;
    let pf_overhead = purify.cpu_cycles as f64 / base.cpu_cycles as f64 - 1.0;
    assert!(
        sm_overhead < 0.20,
        "SafeMem overhead {sm_overhead:.3} too high"
    );
    assert!(
        pf_overhead > 4.0,
        "Purify overhead {pf_overhead:.2} too low"
    );
    assert!(
        pf_overhead / sm_overhead > 50.0,
        "reduction factor {:.0} below 2 orders of magnitude",
        pf_overhead / sm_overhead
    );
}

#[test]
fn ecc_wastes_far_less_space_than_page_protection() {
    // The core Table 4 claim, as an invariant.
    for name in ["proftpd", "gzip"] {
        let app = workload_by_name(name).unwrap();
        let cfg = RunConfig {
            requests: half_scale(app.as_ref()),
            ..RunConfig::default()
        };

        let mut os = Os::with_defaults(1 << 26);
        let mut sm = SafeMem::builder().build(&mut os);
        let ecc = run_under(app.as_ref(), &mut os, &mut sm, &cfg);

        let mut os = Os::with_defaults(1 << 26);
        let mut pg = PageGuard::new();
        let page = run_under(app.as_ref(), &mut os, &mut pg, &cfg);

        let ratio = page.heap_stats.overhead_percent() / ecc.heap_stats.overhead_percent();
        assert!(ratio > 30.0, "{name}: waste reduction only {ratio:.0}x");
    }
}
