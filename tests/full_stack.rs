//! Integration tests across the whole stack: codec → controller → cache →
//! machine → OS → detectors, exercised together.

use safemem::prelude::*;
use safemem_os::{HEAP_BASE, PAGE_BYTES};

/// A watchpoint armed through the OS must survive a full scrub pass, a
/// hardware single-bit error next door, and cache pressure — and still trap
/// exactly the first access.
#[test]
fn watchpoint_survives_hostile_environment() {
    let mut os = Os::with_defaults(1 << 22);
    os.register_ecc_fault_handler();
    os.machine_mut()
        .controller_mut()
        .set_mode(safemem::ecc::EccMode::CorrectAndScrub);

    os.vwrite(HEAP_BASE, &[0x42; 64]).unwrap();
    os.watch_memory(HEAP_BASE, 64).unwrap();

    // Hardware error on a *different* line: corrected invisibly.
    os.vwrite(HEAP_BASE + 4096, &[7; 64]).unwrap();
    let phys = os.vm().translate_resident(HEAP_BASE + 4096).unwrap();
    os.machine_mut().flush_range(phys, 64);
    os.machine_mut().controller_mut().inject_data_error(phys, 3);
    let mut buf = [0u8; 64];
    os.vread(HEAP_BASE + 4096, &mut buf).unwrap();
    assert_eq!(buf, [7; 64]);

    // A scrub cycle (disarm → scan → re-arm).
    os.run_scrub_cycle();

    // Cache pressure: stream through far more data than the caches hold.
    for i in 0..512u64 {
        os.vwrite(HEAP_BASE + 64 * 1024 + i * 64, &[i as u8; 64])
            .unwrap();
    }

    // The watchpoint still fires on the first touch, with a clean signature.
    let fault = os.vread(HEAP_BASE + 8, &mut [0u8; 4]).unwrap_err();
    match fault {
        OsFault::Ecc(user) => {
            assert!(user.signature_ok);
            assert_eq!(user.region_vaddr, HEAP_BASE);
        }
        other => panic!("expected ECC fault, got {other:?}"),
    }

    // And disarming restores the data bit-exactly.
    os.disable_watch_memory(HEAP_BASE).unwrap();
    let mut buf = [0u8; 64];
    os.vread(HEAP_BASE, &mut buf).unwrap();
    assert_eq!(buf, [0x42; 64]);
}

/// The swap-aware extension keeps SafeMem working under memory pressure
/// that would defeat the pinning policy.
#[test]
fn safemem_detects_overflow_under_swap_pressure() {
    let config = OsConfig {
        phys_bytes: 20 * PAGE_BYTES,
        swap_policy: SwapPolicy::SwapAware,
        ..OsConfig::default()
    };
    let mut os = Os::new(config);
    let mut tool = SafeMem::builder().leak_detection(false).build(&mut os);
    let stack = CallStack::new(&[0x1]);

    // Allocate and keep alive more buffers than physical memory holds.
    let buffers: Vec<u64> = (0..24)
        .map(|_| tool.malloc(&mut os, 4096, &stack))
        .collect();
    for (i, &b) in buffers.iter().enumerate() {
        tool.write(&mut os, b, &vec![i as u8; 4096]);
    }
    assert!(os.vm().stats().swap_outs > 0, "swap must actually occur");

    // Every buffer's contents survived swap round trips.
    for (i, &b) in buffers.iter().enumerate() {
        let mut buf = vec![0u8; 4096];
        tool.read(&mut os, b, &mut buf);
        assert_eq!(buf, vec![i as u8; 4096], "buffer {i}");
    }

    // An overflow into a (possibly swapped and re-armed) pad is still caught.
    tool.write(&mut os, buffers[0] + 4096, &[0xFF; 8]);
    assert!(tool.all_reports().iter().any(|r| r.is_corruption()));
}

/// A real hardware error on a watched pad is distinguished from an access
/// fault and reported as such, end to end.
#[test]
fn hardware_error_differentiation_end_to_end() {
    let mut os = Os::with_defaults(1 << 22);
    let mut tool = SafeMem::builder().leak_detection(false).build(&mut os);
    let stack = CallStack::new(&[0x2]);
    let buf = tool.malloc(&mut os, 64, &stack);

    // Corrupt the scrambled back pad with additional flips.
    let pad = buf + 64;
    let phys = os.vm().translate_resident(pad).unwrap();
    os.machine_mut()
        .controller_mut()
        .inject_multi_bit_error(phys);

    // The overflowing access reports both the hardware error and the bug.
    tool.write(&mut os, pad, &[1]);
    let reports = tool.all_reports();
    assert!(
        reports
            .iter()
            .any(|r| matches!(r, BugReport::HardwareError { .. })),
        "{reports:?}"
    );
}

/// The three syscalls validate their arguments per the paper's contract.
#[test]
fn syscall_contracts() {
    let mut os = Os::with_defaults(1 << 22);
    os.register_ecc_fault_handler();
    // Must be line-aligned.
    assert!(os.watch_memory(HEAP_BASE + 4, 64).is_err());
    assert!(os.watch_memory(HEAP_BASE, 65).is_err());
    // Whole-region disable only.
    os.watch_memory(HEAP_BASE, 128).unwrap();
    assert!(os.disable_watch_memory(HEAP_BASE + 64).is_err());
    os.disable_watch_memory(HEAP_BASE).unwrap();
    // Watching uses pinned pages; unwatch releases them.
    assert_eq!(os.vm().stats().pinned_pages, 0);
}

/// CPU-time accounting excludes I/O as §3 requires: a server that idles
/// between requests shows the same CPU time as a busy one doing equal work.
#[test]
fn cpu_time_excludes_idle_periods() {
    let run = |idle_ns: u64| {
        let mut os = Os::with_defaults(1 << 22);
        let mut tool = SafeMem::builder().build(&mut os);
        let stack = CallStack::new(&[0x3]);
        for _ in 0..50 {
            let a = tool.malloc(&mut os, 128, &stack);
            tool.write(&mut os, a, &[1; 128]);
            os.compute(10_000);
            os.io_wait_ns(idle_ns);
            tool.free(&mut os, a);
        }
        os.cpu_cycles()
    };
    assert_eq!(run(0), run(1_000_000), "idle time must not affect CPU time");
}

/// The EccMode × fault-kind matrix: for every checking controller mode,
/// (a) an access to a watched line raises a fault whose scramble signature
/// checks out (`signature_ok`), (b) correctable single-bit data and
/// check-bit errors on unwatched lines never surface to the program,
/// (c) an uncorrectable burst on an unwatched line is a hardware panic, and
/// (d) an uncorrectable burst on a *watched* line fails the signature check
/// and SafeMem classifies it as `BugReport::HardwareError`.
#[test]
fn ecc_mode_fault_kind_matrix() {
    use safemem::ecc::EccMode;

    for mode in [
        EccMode::CheckOnly,
        EccMode::CorrectError,
        EccMode::CorrectAndScrub,
    ] {
        // (a) Pure access fault: signature intact.
        let mut os = Os::with_defaults(1 << 22);
        os.register_ecc_fault_handler();
        os.machine_mut().controller_mut().set_mode(mode);
        os.vwrite(HEAP_BASE, &[0x42; 64]).unwrap();
        os.watch_memory(HEAP_BASE, 64).unwrap();
        let mut buf = [0u8; 8];
        match os.vread(HEAP_BASE, &mut buf).unwrap_err() {
            OsFault::Ecc(fault) => {
                assert!(
                    fault.signature_ok,
                    "{mode:?}: access fault must keep the signature"
                )
            }
            other => panic!("{mode:?}: expected ECC fault, got {other}"),
        }
        os.disable_watch_memory(HEAP_BASE).unwrap();

        // (b) Correctable single-bit errors on an unwatched line: the
        // program never notices (in CheckOnly the error is only reported).
        let quiet = HEAP_BASE + 8 * 4096;
        os.vwrite(quiet, &[7; 64]).unwrap();
        let phys = os.vm().translate_resident(quiet).unwrap();
        os.machine_mut().flush_range(phys, 64);
        os.machine_mut()
            .controller_mut()
            .inject_data_error(phys, 13);
        os.vread(quiet, &mut buf).unwrap();
        os.machine_mut().flush_range(phys + 8, 8);
        os.machine_mut()
            .controller_mut()
            .inject_code_error(phys + 8, 3);
        os.vread(quiet + 8, &mut buf).unwrap();
        let stats = os.machine().controller().stats();
        if mode.corrects() {
            assert!(stats.corrected_single_bit >= 2, "{mode:?}: {stats:?}");
        } else {
            assert!(stats.reported_single_bit >= 2, "{mode:?}: {stats:?}");
        }
        assert_eq!(os.stats().hardware_panics, 0, "{mode:?}");

        // (c) Uncorrectable burst on an unwatched line: hardware panic.
        let doomed = quiet + 4096;
        os.vwrite(doomed, &[9; 64]).unwrap();
        let phys = os.vm().translate_resident(doomed).unwrap();
        os.machine_mut().flush_range(phys, 64);
        os.machine_mut()
            .controller_mut()
            .inject_multi_bit_error(phys);
        match os.vread(doomed, &mut buf).unwrap_err() {
            OsFault::HardwareError { .. } => {}
            other => panic!("{mode:?}: expected hardware error, got {other}"),
        }
        assert_eq!(os.stats().hardware_panics, 1, "{mode:?}");

        // (d) Uncorrectable burst on a *watched* line: the signature check
        // fails and SafeMem attributes the fault to hardware.
        let mut os = Os::with_defaults(1 << 22);
        os.machine_mut().controller_mut().set_mode(mode);
        let mut tool = SafeMem::builder().leak_detection(false).build(&mut os);
        let stack = CallStack::new(&[0x7]);
        let buf_addr = tool.malloc(&mut os, 64, &stack);
        let pad = buf_addr + 64;
        let phys = os.vm().translate_resident(pad).unwrap();
        os.machine_mut()
            .controller_mut()
            .inject_multi_bit_error(phys);
        tool.write(&mut os, pad, &[1]);
        let reports = tool.all_reports();
        assert!(
            reports
                .iter()
                .any(|r| matches!(r, BugReport::HardwareError { .. })),
            "{mode:?}: {reports:?}"
        );
        // The injection hooks are themselves accounted for.
        let stats = os.machine().controller().stats();
        assert_eq!(stats.injected_multi_bit, 1, "{mode:?}");
    }
}
