//! Leak hunting on a production server.
//!
//! Runs the `squid1` proxy model (buggy build) under SafeMem and shows the
//! full §3 pipeline in action: lifetime learning, suspects, ECC pruning of
//! false positives, and the final leak report — plus what the same run
//! costs compared to an uninstrumented server.
//!
//! ```sh
//! cargo run --release --example leak_hunting_server
//! ```

use safemem::prelude::*;

fn main() {
    let squid = workload_by_name("squid1").expect("registered workload");
    println!(
        "== hunting the {} leak ({}) ==\n",
        squid.spec().name,
        squid.spec().bug
    );

    // Reference run: no tool, normal inputs.
    let mut os = Os::with_defaults(1 << 26);
    let mut baseline = NullTool::new();
    let normal = RunConfig::default();
    let base = run_under(squid.as_ref(), &mut os, &mut baseline, &normal);

    // Production run: SafeMem, buggy inputs (the leak path is live).
    let mut os = Os::with_defaults(1 << 26);
    let mut tool = SafeMem::builder().build(&mut os);
    let buggy = RunConfig {
        input: InputMode::Buggy,
        ..RunConfig::default()
    };
    squid.run(&mut os, &mut tool, &buggy);
    tool.finish(&mut os);

    let stats = tool.leak_stats().expect("leak detection enabled");
    println!("requests served, lifetime statistics learned:");
    println!("  detection passes      : {}", stats.checks);
    println!("  suspects ECC-watched  : {}", stats.suspects_flagged);
    println!(
        "  pruned on first access: {} (false positives avoided)",
        stats.suspects_pruned
    );
    println!("  leaks reported        : {}\n", stats.leaks_reported);

    let truth = squid.true_leak_groups();
    for report in tool.all_reports().iter().filter(|r| r.is_leak()) {
        let veridical = match report {
            BugReport::Leak { group, .. } => truth.contains(group),
            _ => false,
        };
        println!(
            "  {report}  [{}]",
            if veridical {
                "TRUE LEAK"
            } else {
                "false positive"
            }
        );
    }

    let overhead = (os.cpu_cycles() as f64 / base.cpu_cycles as f64 - 1.0) * 100.0;
    println!(
        "\nmonitoring cost vs uninstrumented run: ~{overhead:.1}% CPU \
         (the paper reports 1.6–14.4% across its applications)"
    );
}
