//! Bringing SafeMem up on a "new chipset" through the narrow register
//! interface real ECC controllers expose (paper §2.2.3: the prototype's ECC
//! library is device-specific because controllers export a narrow, limited
//! interface).
//!
//! Drives the whole WatchMemory arm/fault/diagnose/disarm cycle using only
//! memory-mapped registers plus the data path — the sequence a port of
//! SafeMem's kernel module performs on hardware.
//!
//! ```sh
//! cargo run --release --example chipset_bringup
//! ```

use safemem::ecc::chipset::{Register, ERRSTS_LOG_VALID, ERRSTS_MULTI};
use safemem::ecc::{Chipset, ScrambleScheme};

fn main() {
    println!("== chipset bring-up: SafeMem through the register interface ==\n");
    let mut chip = Chipset::new(1 << 20);
    let scheme = ScrambleScheme::default();

    // 1. Probe the device: mode register, scrub capability.
    chip.write_register(Register::ModeControl, 2); // Correct-Error
    println!(
        "mode register      : {:#x} (correct-error)",
        chip.read_register(Register::ModeControl)
    );

    // 2. Program data and arm a watchpoint with the Figure-2 sequence,
    //    expressed purely as register writes around the data path.
    let addr = 0x4000u64;
    let original = 0x0123_4567_89AB_CDEFu64;
    chip.controller_mut().write(addr, &original.to_le_bytes());

    chip.write_register(Register::GlobalConfig, 0b11); // bus lock, ECC on
    chip.write_register(Register::GlobalConfig, 0b10); // ECC off (lock held)
    chip.controller_mut()
        .write(addr, &scheme.apply(original).to_le_bytes());
    chip.write_register(Register::GlobalConfig, 0b11); // ECC on
    chip.write_register(Register::GlobalConfig, 0b01); // release bus
    println!(
        "watchpoint armed   : line {addr:#x}, bits {:?} flipped under stale code",
        scheme.bits()
    );

    // 3. The "program" touches the line: the access faults.
    let mut buf = [0u8; 8];
    let fault = chip.controller_mut().read(addr, &mut buf).unwrap_err();
    println!("\nfirst access       : {fault}");

    // 4. The interrupt handler reads the error log registers.
    let status = chip.read_register(Register::ErrorStatus);
    assert_ne!(status & ERRSTS_MULTI, 0);
    assert_ne!(status & ERRSTS_LOG_VALID, 0);
    let err_addr = chip.read_register(Register::ErrorAddress);
    let syndrome = chip.read_register(Register::ErrorSyndrome);
    println!("ERRSTS             : {status:#06x} (multi-bit, log valid)");
    println!("ERRADDR / ERRSYN   : {err_addr:#x} / {syndrome:#04x}");
    assert_eq!(syndrome as u8, scheme.syndrome(), "the scramble signature");

    // 5. Signature check against the saved original, then disarm.
    let raw = u64::from_le_bytes(
        chip.controller_mut()
            .peek(addr, 8)
            .try_into()
            .expect("8 bytes"),
    );
    println!(
        "signature check    : stored == original ⊕ mask → {}",
        if scheme.matches(original, raw) {
            "ACCESS FAULT (watchpoint hit)"
        } else {
            "hardware error"
        }
    );
    chip.controller_mut().write(addr, &original.to_le_bytes());
    chip.controller_mut()
        .read(addr, &mut buf)
        .expect("disarmed");
    assert_eq!(u64::from_le_bytes(buf), original);
    println!("disarmed           : original data restored, reads clean");

    println!(
        "\nEverything above used only {} registers — the portability surface a\n\
         standardised software-friendly ECC interface (paper §2.2.3) would fix.",
        5
    );
}
