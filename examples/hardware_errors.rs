//! ECC memory keeps doing its day job while SafeMem borrows it.
//!
//! Injects real memory faults — correctable single-bit flips and an
//! uncorrectable multi-bit error on a *watched* line — during a monitored
//! run, and shows that (1) single-bit errors are healed invisibly,
//! (2) SafeMem distinguishes the multi-bit hardware error from its own
//! watchpoint faults via the scramble signature (§2.2.2), and (3) the
//! monitored program never sees corrupted data.
//!
//! ```sh
//! cargo run --release --example hardware_errors
//! ```

use safemem::prelude::*;

fn main() {
    let mut os = Os::with_defaults(1 << 22);
    let mut tool = SafeMem::builder().leak_detection(false).build(&mut os);
    let stack = CallStack::new(&[0x50_1000]);

    println!("== hardware faults during a monitored run ==\n");

    // A working set the 'program' keeps using.
    let buffers: Vec<u64> = (0..8).map(|_| tool.malloc(&mut os, 512, &stack)).collect();
    for (i, &b) in buffers.iter().enumerate() {
        tool.write(&mut os, b, &vec![i as u8 + 1; 512]);
    }

    // Cosmic ray #1: a single-bit flip in live program data.
    let victim = buffers[3];
    let phys = os.vm().translate_resident(victim).expect("resident");
    os.machine_mut().flush_range(phys, 64);
    os.machine_mut()
        .controller_mut()
        .inject_data_error(phys, 17);
    println!("injected 1-bit fault into buffer 3 …");

    // Cosmic ray #2: a multi-bit burst right on one of SafeMem's own
    // watched guard pads (scrambled data!).
    let pad_phys = os
        .vm()
        .translate_resident(buffers[5] - 64)
        .expect("pad resident");
    os.machine_mut()
        .controller_mut()
        .inject_multi_bit_error(pad_phys);
    println!("injected 2-bit fault into the watched pad of buffer 5 …\n");

    // The program keeps running: all data reads back intact.
    for (i, &b) in buffers.iter().enumerate() {
        let mut buf = vec![0u8; 512];
        tool.read(&mut os, b, &mut buf);
        assert!(
            buf.iter().all(|&x| x == i as u8 + 1),
            "buffer {i} corrupted!"
        );
    }
    let ctl = os.machine().controller().stats();
    println!("all 8 buffers verified intact.");
    println!(
        "  single-bit errors corrected transparently: {}",
        ctl.corrected_single_bit
    );

    // The damaged pad: the program now (buggily) underflows into it. SafeMem
    // sees an uncorrectable fault whose bits do NOT match the scramble
    // signature and reports a hardware error alongside the overflow.
    tool.read(&mut os, buffers[5] - 8, &mut [0u8; 4]);
    for report in tool.all_reports() {
        println!("  report: {report}");
    }

    let reports = tool.all_reports();
    assert!(reports
        .iter()
        .any(|r| matches!(r, BugReport::HardwareError { .. })));
    println!(
        "\nSafeMem distinguished the genuine hardware error from its own \
         watchpoint faults\nusing the saved original + scramble signature — paper §2.2.2."
    );
}
