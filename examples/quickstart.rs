//! Quickstart: catch an overflow, a use-after-free, and a leak in one run.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use safemem::prelude::*;

fn main() {
    // 1. A simulated 2.4 GHz machine with 4 MiB of ECC memory, the patched
    //    OS on top, and SafeMem interposed on the allocator.
    let mut os = Os::with_defaults(1 << 22);
    let mut tool = SafeMem::builder()
        .leak_config(LeakConfig {
            // Small thresholds so the demo's leak surfaces in milliseconds
            // of simulated time.
            check_period: 100_000,
            warmup: 0,
            sleak_stable_threshold: 100_000,
            report_after: 2_000_000,
            ..LeakConfig::default()
        })
        .build(&mut os);

    println!("== SafeMem quickstart ==\n");

    // 2. Buffer overflow: the watched guard line past the buffer end traps
    //    the very first out-of-bounds access.
    let site = CallStack::new(&[0x401000]);
    let buf = tool.malloc(&mut os, 100, &site);
    tool.write(&mut os, buf, &[0xAA; 100]); // in bounds: silent
    tool.write(&mut os, buf + 126, &[1, 2, 3, 4]); // crosses the padding
    println!(
        "overflow demo      → {}",
        tool.all_reports().last().unwrap()
    );

    // 3. Use-after-free: the freed buffer stays ECC-watched until reuse.
    let buf2 = tool.malloc(&mut os, 64, &CallStack::new(&[0x402000]));
    tool.write(&mut os, buf2, &[0xBB; 64]);
    tool.free(&mut os, buf2);
    let mut stale = [0u8; 8];
    tool.read(&mut os, buf2, &mut stale);
    println!(
        "use-after-free demo → {}",
        tool.all_reports().last().unwrap()
    );

    // 4. Memory leak: one allocation site frees its objects quickly — except
    //    one object that silently outlives them all and is never touched.
    let leak_site = CallStack::new(&[0x403000]);
    let leaked = tool.malloc(&mut os, 128, &leak_site);
    for _ in 0..200 {
        let tmp = tool.malloc(&mut os, 128, &leak_site);
        os.compute(50_000);
        tool.free(&mut os, tmp);
    }
    os.compute(4_000_000); // time passes; the leak is never accessed
    tool.finish(&mut os);
    let leak = tool
        .all_reports()
        .into_iter()
        .find(|r| r.is_leak())
        .expect("the leak is reported");
    println!("leak demo          → {leak}");
    assert!(matches!(leak, BugReport::Leak { addr, .. } if addr == leaked));

    // 5. The price: a handful of syscalls per allocation, no per-access
    //    instrumentation.
    println!(
        "\nsimulated CPU time: {:.2} ms; ECC watchpoints armed: {}, faults delivered: {}",
        os.cpu_ns() as f64 / 1e6,
        os.stats().watch_calls,
        os.stats().ecc_faults_delivered,
    );
}
