//! The headline experiment as a single program: deploy SafeMem on all seven
//! buggy applications and verify every bug is found at production-run cost.
//!
//! ```sh
//! cargo run --release --example production_monitor
//! ```

use safemem::prelude::*;

fn main() {
    println!("== SafeMem production monitoring: the seven applications ==\n");
    println!(
        "{:<10} {:<28} {:>9} {:>12} {:>10}",
        "app", "bug", "detected", "overhead %", "FPs"
    );

    for app in all_workloads() {
        let spec = app.spec();
        let scale = |n: u64| Some(n / 2); // half-length runs keep the demo quick
        let requests = scale(app.default_requests());

        // Cost on normal inputs, vs the uninstrumented baseline.
        let mut os = Os::with_defaults(1 << 26);
        let mut baseline = NullTool::new();
        let normal = RunConfig {
            requests,
            ..RunConfig::default()
        };
        let base = run_under(app.as_ref(), &mut os, &mut baseline, &normal);

        let mut os = Os::with_defaults(1 << 26);
        let mut tool = SafeMem::builder().build(&mut os);
        let monitored = run_under(app.as_ref(), &mut os, &mut tool, &normal);
        let overhead = (monitored.cpu_cycles as f64 / base.cpu_cycles as f64 - 1.0) * 100.0;

        // Detection on buggy inputs.
        let mut os = Os::with_defaults(1 << 26);
        let mut tool = SafeMem::builder().build(&mut os);
        let buggy = RunConfig {
            input: InputMode::Buggy,
            requests,
            ..RunConfig::default()
        };
        let result = run_under(app.as_ref(), &mut os, &mut tool, &buggy);

        let truth = app.true_leak_groups();
        let detected = if spec.bug.is_leak() {
            result.true_leaks(&truth) > 0
        } else {
            result.corruption_detected()
        };

        println!(
            "{:<10} {:<28} {:>9} {:>12.1} {:>10}",
            spec.name,
            spec.bug.to_string(),
            if detected { "YES" } else { "NO" },
            overhead,
            result.false_leaks(&truth),
        );
    }

    println!("\n(the paper's Table 3: all seven detected, 1.6–14.4% overhead)");
}
