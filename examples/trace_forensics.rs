//! Forensics workflow: record a production incident, replay it in the lab.
//!
//! A production box runs uninstrumented (no overhead budget at all) but
//! records the allocation/access trace. When a corruption incident is
//! suspected, the trace ships to a lab machine where SafeMem replays it —
//! catching the exact overflow — and the diagnosis module turns the reports
//! into an actionable summary.
//!
//! ```sh
//! cargo run --release --example trace_forensics
//! ```

use safemem::core::Diagnosis;
use safemem::prelude::*;
use safemem::workloads::Recorder;

fn main() {
    println!("== production: uninstrumented run, trace recorded ==\n");
    let app = workload_by_name("httpd").expect("extension workload");
    let mut os = Os::with_defaults(1 << 26);
    let mut baseline = NullTool::new();
    let mut recorder = Recorder::new(&mut baseline);
    let cfg = RunConfig {
        input: InputMode::Buggy,
        requests: Some(300),
        ..RunConfig::default()
    };
    app.run(&mut os, &mut recorder, &cfg);
    let trace = recorder.into_trace();
    println!(
        "recorded {} operations; baseline saw {} reports (it checks nothing)",
        trace.len(),
        baseline.reports().len()
    );

    // The trace serialises to a shippable text artefact.
    let text = trace.to_text();
    println!("trace artefact: {} bytes of text\n", text.len());

    println!("== lab: replay under SafeMem ==\n");
    let trace = safemem::workloads::Trace::from_text(&text).expect("artefact parses");
    let mut os = Os::with_defaults(1 << 26);
    let mut tool = SafeMem::builder().build(&mut os);
    let result = trace.replay(&mut os, &mut tool);

    let diagnosis = Diagnosis::from_reports(&result.reports);
    print!("{}", diagnosis.render());

    assert!(result.corruption_detected(), "the incident reproduces");
    println!("\nThe header overflow reproduced from the trace alone — no access to");
    println!("the production machine, inputs, or timing needed.");
}
