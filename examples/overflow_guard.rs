//! Guarding a compression pipeline against overflows: ECC lines vs guard
//! pages vs Purify-style shadow memory.
//!
//! Runs the `gzip` model (crafted input) under all three tools and compares
//! what each catches and what each costs — the essence of Tables 3 and 4.
//!
//! ```sh
//! cargo run --release --example overflow_guard
//! ```

use safemem::prelude::*;

fn main() {
    let gzip = workload_by_name("gzip").expect("registered workload");
    let buggy = RunConfig {
        input: InputMode::Buggy,
        ..RunConfig::default()
    };
    let normal = RunConfig::default();

    println!("== {} with a crafted input block ==\n", gzip.spec().name);

    // Baseline cost (normal input: identical op sequence, bug dormant).
    let mut os = Os::with_defaults(1 << 26);
    let mut tool = NullTool::new();
    let base = run_under(gzip.as_ref(), &mut os, &mut tool, &normal);

    let show = |name: &str, detected: bool, cycles: u64, waste: f64, base_cycles: u64| {
        println!(
            "  {name:<22} caught: {:<5} cost: {:>7.2}x   memory waste: {waste:>8.1}%",
            if detected { "YES" } else { "no" },
            cycles as f64 / base_cycles as f64,
        );
    };

    // SafeMem: two watched cache lines around every buffer.
    let mut os = Os::with_defaults(1 << 26);
    let mut safemem = SafeMem::builder().build(&mut os);
    let r = run_under(gzip.as_ref(), &mut os, &mut safemem, &buggy);
    show(
        "safemem (ECC lines)",
        r.corruption_detected(),
        r.cpu_cycles,
        r.heap_stats.overhead_percent(),
        base.cpu_cycles,
    );

    // Page guard: two PROT_NONE pages around every buffer.
    let mut os = Os::with_defaults(1 << 26);
    let mut pg = PageGuard::new();
    let r = run_under(gzip.as_ref(), &mut os, &mut pg, &buggy);
    show(
        "page guard (mprotect)",
        r.corruption_detected(),
        r.cpu_cycles,
        r.heap_stats.overhead_percent(),
        base.cpu_cycles,
    );

    // Purify: every access checked against byte-granular shadow state.
    let mut os = Os::with_defaults(1 << 26);
    let mut purify = Purify::new();
    let r = run_under(gzip.as_ref(), &mut os, &mut purify, &buggy);
    show(
        "purify (shadow mem)",
        r.corruption_detected(),
        r.cpu_cycles,
        r.heap_stats.overhead_percent(),
        base.cpu_cycles,
    );

    println!(
        "\nAll three catch the overflow; only SafeMem does it at production-run \
         cost\nwith cache-line-sized (not page-sized) memory waste."
    );
}
